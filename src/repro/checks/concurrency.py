"""CFG-based lock-discipline analysis for the serving subsystem.

PR 2 shipped a *lexical* lock checker: a ``with``-depth counter that
could not see early returns, ``try/finally`` release patterns, or
manual ``acquire()``/``release()`` pairs. This rewrite computes real
lock-held sets per program point: every method gets a control-flow
graph (:mod:`.cfg`), and two forward dataflow passes propagate the set
of class-owned locks held at each event —

* **must-held** (meet = intersection): a lock provably held on *every*
  path. Used where claiming protection needs proof (LK001/LK002
  guardedness, LK004/LK005 blocking-under-lock, LK008 re-acquire,
  LK003 ordering edges).
* **may-held** (meet = union): a lock possibly held on *some* path.
  Used where the bug is "might still be held" (LK006) or "might not be
  held" (LK007).

Rules
-----
LK001  attribute guarded elsewhere but accessed with no lock held
LK002  shared mutable attribute never accessed under a lock
LK003  lock-order inversion (lock A held acquiring B, and B held
       acquiring A, anywhere in the same class)
LK004  blocking call (``time.sleep``, ``subprocess.*``, ``.result()``,
       thread/process ``.join()``) while a lock is held
LK005  ``await`` while holding a lock
LK006  a lock may still be held when the function exits
LK007  ``release()`` of a lock not held on any path
LK008  re-acquiring a held non-reentrant ``Lock`` (self-deadlock)

Scope and soundness choices: ``__init__``/``__new__``/``__del__`` are
single-threaded and exempt from attribute rules; nested functions and
lambdas escape their lock scope, so their bodies are analyzed with an
empty entry lockset; calls *on* an attribute (``self._evt.set()``) are
not writes, so thread-safe members assigned once never trigger;
``Condition.wait`` atomically releases and re-acquires, so it is
neither a state change nor a blocking violation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..errors import CheckError
from .astutils import (
    PACKAGE_ROOT,
    dotted_name,
    innermost_self_attr,
    iter_py_files,
    repo_relative,
    self_attr,
)
from .cfg import CFG, WithEnter, WithExit, build_cfg, forward_dataflow
from .findings import Finding, Severity

__all__ = ["AttributeAccess", "analyze_source", "check_lock_discipline"]

_DEFAULT_SCOPE = (PACKAGE_ROOT / "serving",)

#: lock factory -> reentrancy. ``Condition()`` wraps an RLock.
_LOCK_FACTORIES = {"Lock": False, "RLock": True, "Condition": True}

_EXEMPT_METHODS = {"__init__", "__new__", "__del__"}

#: Methods whose contract *is* "leave the lock held".
_LK006_EXEMPT = {"__enter__", "acquire", "acquire_lock", "lock"}

#: Methods whose contract is "the caller already holds the lock", so a
#: release with no in-method acquire is the point, not a bug.
_LK007_EXEMPT = {"__exit__", "release", "release_lock", "unlock"}

#: Module-level callables that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
}

#: ``Condition`` methods that are coordination, not lock-state changes.
_CONDITION_METHODS = {"wait", "wait_for", "notify", "notify_all"}

_JOIN_RECEIVER_HINTS = ("thread", "worker", "proc", "process")


@dataclass(frozen=True)
class AttributeAccess:
    """One access to ``self.<attr>``, with its dataflow guard state."""

    attr: str
    line: int
    method: str
    write: bool
    guarded: bool    # a class lock is must-held at this program point


@dataclass(frozen=True)
class _LockOp:
    kind: str        # "acquire" | "release"
    attr: str
    line: int
    via_with: bool


# -- lock discovery ----------------------------------------------------------

def _lock_factory(node: ast.expr) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name if name in _LOCK_FACTORIES else None


def _class_locks(cls: ast.ClassDef) -> Dict[str, bool]:
    """``self.<attr> = threading.Lock()`` attrs -> reentrant flag."""
    locks: Dict[str, bool] = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            factory = _lock_factory(node.value)
            if factory is None:
                continue
            for target in node.targets:
                attr = self_attr(target)
                if attr is not None:
                    locks[attr] = _LOCK_FACTORIES[factory]
    return locks


# -- event decoding ----------------------------------------------------------

def _ordered_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first, source-order walk that stays in the current scope."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        yield child
        yield from _ordered_walk(child)


def _event_lock_ops(event: object, locks: Dict[str, bool]) -> List[_LockOp]:
    """Acquire/release operations an event performs, in order."""
    if isinstance(event, (WithEnter, WithExit)):
        attr = self_attr(event.item.context_expr)
        if attr in locks:
            kind = "acquire" if isinstance(event, WithEnter) else "release"
            return [_LockOp(kind, attr, event.line, via_with=True)]
        return []
    if not isinstance(event, ast.AST):
        return []
    ops: List[_LockOp] = []
    nodes = [event] if isinstance(event, ast.Call) else []
    for node in _ordered_walk(event):
        if isinstance(node, ast.Call):
            nodes.append(node)
    for node in nodes:
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        attr = self_attr(func.value)
        if attr not in locks:
            continue
        if func.attr == "acquire":
            ops.append(_LockOp("acquire", attr, node.lineno, via_with=False))
        elif func.attr == "release":
            ops.append(_LockOp("release", attr, node.lineno, via_with=False))
        # locked()/wait()/notify() do not change the held set.
    return ops


def _make_transfer(locks: Dict[str, bool]):
    def transfer(state: FrozenSet[str], event: object) -> FrozenSet[str]:
        for op in _event_lock_ops(event, locks):
            if op.kind == "acquire":
                state = state | {op.attr}
            else:
                state = state - {op.attr}
        return state
    return transfer


# -- per-event rule checks ---------------------------------------------------

def _receiver_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _blocking_calls(event: ast.AST,
                    locks: Dict[str, bool]) -> List[Tuple[int, str]]:
    """(line, description) for calls that block the thread."""
    out: List[Tuple[int, str]] = []
    nodes = [event] if isinstance(event, ast.Call) else []
    nodes.extend(n for n in _ordered_walk(event) if isinstance(n, ast.Call))
    for node in nodes:
        func = node.func
        dotted = dotted_name(func)
        if dotted in _BLOCKING_CALLS:
            out.append((node.lineno, f"{dotted}()"))
            continue
        if not isinstance(func, ast.Attribute):
            continue
        if self_attr(func.value) in locks:
            continue  # lock-op or Condition coordination, handled elsewhere
        receiver = _receiver_name(func.value)
        if func.attr == "result":
            out.append((node.lineno,
                        f"{receiver or '<expr>'}.result()"))
        elif func.attr == "join":
            if isinstance(func.value, ast.Constant):
                continue  # str.join
            if receiver is not None and any(
                    hint in receiver.lower()
                    for hint in _JOIN_RECEIVER_HINTS):
                out.append((node.lineno, f"{receiver}.join()"))
    return out


def _awaits(event: ast.AST) -> List[int]:
    found = [event.lineno] if isinstance(event, ast.Await) else []
    found.extend(n.lineno for n in _ordered_walk(event)
                 if isinstance(n, ast.Await))
    return found


# -- attribute-access extraction ---------------------------------------------

def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


def _nested_store_bases(event: ast.AST) -> Set[int]:
    """ids of ``self.x`` nodes that are the base of a nested store.

    ``self.x.y = v`` / ``self.x[k] = v`` mutate the object in ``self.x``
    even though the ``self.x`` node itself has Load context.
    """
    bases: Set[int] = set()
    nodes = [event] if isinstance(event, ast.stmt) else []
    nodes.extend(n for n in _ordered_walk(event))
    for node in nodes:
        if isinstance(node, ast.Assign):
            targets: Sequence[ast.expr] = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        else:
            continue
        for target in targets:
            for leaf in _flatten_targets(target):
                base = innermost_self_attr(leaf)
                if base is not None:
                    bases.add(id(base))
    return bases


def _collect_accesses(node: ast.AST, locks: Dict[str, bool],
                      write_bases: Set[int], guarded: bool, method: str,
                      out: List[AttributeAccess]) -> None:
    if isinstance(node, ast.Lambda):
        # Deferred execution: the definition-point lockset is meaningless.
        _collect_accesses(node.body, locks, write_bases, False, method, out)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return  # analyzed as their own scope by the caller
    attr = self_attr(node)
    if attr is not None and attr not in locks:
        write = (isinstance(node.ctx, (ast.Store, ast.Del))  # type: ignore[attr-defined]
                 or id(node) in write_bases)
        out.append(AttributeAccess(attr=attr, line=node.lineno,
                                   method=method, write=write,
                                   guarded=guarded))
    for child in ast.iter_child_nodes(node):
        _collect_accesses(child, locks, write_bases, guarded, method, out)


def _event_accesses(event: object, locks: Dict[str, bool], guarded: bool,
                    method: str, out: List[AttributeAccess]) -> None:
    if isinstance(event, WithExit):
        return
    if isinstance(event, WithEnter):
        item = event.item
        if self_attr(item.context_expr) not in locks:
            _collect_accesses(item.context_expr, locks, set(), guarded,
                              method, out)
        if item.optional_vars is not None:
            bases = {id(b) for leaf in _flatten_targets(item.optional_vars)
                     for b in [innermost_self_attr(leaf)] if b is not None}
            _collect_accesses(item.optional_vars, locks, bases, guarded,
                              method, out)
        return
    if not isinstance(event, ast.AST):
        return
    _collect_accesses(event, locks, _nested_store_bases(event), guarded,
                      method, out)


# -- per-function analysis ---------------------------------------------------

class _ClassAnalysis:
    def __init__(self, cls_name: str, locks: Dict[str, bool], rel: str):
        self.cls_name = cls_name
        self.locks = locks
        self.rel = rel
        self.accesses: List[AttributeAccess] = []
        self.findings: List[Finding] = []
        #: (held, acquired) -> first line where the edge was observed.
        self.order_edges: Dict[Tuple[str, str], int] = {}

    def analyze_function(self, func: ast.AST, method: str) -> None:
        cfg = build_cfg(func)
        transfer = _make_transfer(self.locks)
        must = forward_dataflow(cfg, transfer, frozenset(),
                                lambda a, b: a & b)
        simple_name = method.rsplit(".", 1)[-1].strip("<>")
        may_entry = (frozenset(self.locks)
                     if simple_name in _LK007_EXEMPT else frozenset())
        may = forward_dataflow(cfg, transfer, may_entry,
                               lambda a, b: a | b)

        for block in cfg.blocks:
            must_state, may_state = must[block.index], may[block.index]
            for event in block.events:
                self._check_event(event, must_state, may_state, method)
                self._nested_scopes(event, method)
                must_state = transfer(must_state, event)
                may_state = transfer(may_state, event)

        self._check_exit(may[CFG.EXIT], func, method)

    def _check_event(self, event: object, must_state: FrozenSet[str],
                     may_state: FrozenSet[str], method: str) -> None:
        for op in _event_lock_ops(event, self.locks):
            if op.kind == "acquire":
                for held in sorted(must_state):
                    if held != op.attr:
                        self.order_edges.setdefault((held, op.attr), op.line)
                if op.attr in must_state and not self.locks[op.attr]:
                    self.findings.append(Finding(
                        "LK008", Severity.ERROR, self.rel, op.line,
                        f"{self.cls_name}.{method}() re-acquires "
                        f"non-reentrant Lock self.{op.attr} while already "
                        f"holding it: guaranteed self-deadlock"))
            elif not op.via_with and op.attr not in may_state:
                self.findings.append(Finding(
                    "LK007", Severity.ERROR, self.rel, op.line,
                    f"{self.cls_name}.{method}() releases self.{op.attr} "
                    f"but the lock is not held on any path here "
                    f"(release() would raise RuntimeError)"))
            # Fold this op before judging the next one in the same event.
            if op.kind == "acquire":
                must_state = must_state | {op.attr}
                may_state = may_state | {op.attr}
            else:
                must_state = must_state - {op.attr}
                may_state = may_state - {op.attr}

        guarded = bool(must_state)
        _event_accesses(event, self.locks, guarded, method, self.accesses)

        if guarded and isinstance(event, ast.AST):
            held = ", ".join(f"self.{name}" for name in sorted(must_state))
            for line, call in _blocking_calls(event, self.locks):
                self.findings.append(Finding(
                    "LK004", Severity.ERROR, self.rel, line,
                    f"{self.cls_name}.{method}() calls blocking {call} "
                    f"while holding {held}"))
            for line in _awaits(event):
                self.findings.append(Finding(
                    "LK005", Severity.ERROR, self.rel, line,
                    f"{self.cls_name}.{method}() awaits while holding "
                    f"{held}: the event loop stalls every other task "
                    f"contending for it"))

    def _nested_scopes(self, event: object, method: str) -> None:
        if isinstance(event, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Closures escape the lock scope: fresh CFG, empty lockset.
            self.analyze_function(event, f"{method}.<{event.name}>")

    def _check_exit(self, exit_state: FrozenSet[str], func: ast.AST,
                    method: str) -> None:
        simple_name = method.rsplit(".", 1)[-1].strip("<>")
        if simple_name in _LK006_EXEMPT | _LK007_EXEMPT:
            return
        for attr in sorted(exit_state):
            self.findings.append(Finding(
                "LK006", Severity.WARNING, self.rel,
                getattr(func, "lineno", 0),
                f"{self.cls_name}.{method}() may exit with self.{attr} "
                f"still held (no release on at least one path)"))

    # -- class-level verdicts ------------------------------------------------

    def finish(self) -> List[Finding]:
        self._judge_order()
        self._judge_guardedness()
        return self.findings

    def _judge_order(self) -> None:
        reported: Set[Tuple[str, str]] = set()
        for (a, b), line in sorted(self.order_edges.items()):
            if (b, a) in self.order_edges and (b, a) not in reported:
                reported.add((a, b))
                other = self.order_edges[(b, a)]
                self.findings.append(Finding(
                    "LK003", Severity.ERROR, self.rel, line,
                    f"{self.cls_name}: lock-order inversion — self.{b} "
                    f"acquired under self.{a} here, but self.{a} acquired "
                    f"under self.{b} at line {other}; concurrent callers "
                    f"can deadlock"))

    def _judge_guardedness(self) -> None:
        guarded_attrs = {a.attr for a in self.accesses if a.guarded}
        written_attrs = {a.attr for a in self.accesses if a.write}
        by_attr: Dict[str, List[AttributeAccess]] = {}
        for access in self.accesses:
            by_attr.setdefault(access.attr, []).append(access)

        lock_names = ", ".join(sorted(self.locks))
        for attr, attr_accesses in sorted(by_attr.items()):
            if attr in guarded_attrs:
                if attr not in written_attrs:
                    continue  # guarded reads of effectively-immutable state
                for access in attr_accesses:
                    if access.guarded:
                        continue
                    verb = "written" if access.write else "read"
                    self.findings.append(Finding(
                        "LK001", Severity.ERROR, self.rel, access.line,
                        f"{self.cls_name}.{attr} is guarded by {lock_names} "
                        f"elsewhere but {verb} with no lock held in "
                        f"{access.method}()"))
            else:
                writes = [a for a in attr_accesses if a.write]
                if not writes:
                    continue
                methods = sorted({a.method for a in attr_accesses})
                for access in writes:
                    self.findings.append(Finding(
                        "LK002", Severity.ERROR, self.rel, access.line,
                        f"{self.cls_name}.{attr} is shared mutable state "
                        f"written in {access.method}() but never accessed "
                        f"under a lock (class holds {lock_names}; accessed "
                        f"from: {', '.join(methods)})"))


# -- entry points ------------------------------------------------------------

def analyze_source(source: str, path: str) -> List[Finding]:
    """Analyze every lock-owning class in one source file."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise CheckError(f"cannot parse {path}: {exc}") from exc
    rel = repo_relative(path) if Path(path).exists() else path
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        locks = _class_locks(node)
        if not locks:
            continue
        analysis = _ClassAnalysis(node.name, locks, rel)
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _EXEMPT_METHODS:
                continue
            analysis.analyze_function(item, item.name)
        findings.extend(analysis.finish())
    return findings


def check_lock_discipline(paths: Optional[Sequence[Union[str, Path]]] = None
                          ) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` (default: serving/)."""
    findings: List[Finding] = []
    for file_path in iter_py_files(paths or _DEFAULT_SCOPE):
        findings.extend(analyze_source(file_path.read_text(),
                                       str(file_path)))
    return list(dict.fromkeys(findings))
