"""RS: resource-lifecycle analysis (rules RS001-RS008).

Must-release analysis over the per-function CFGs of
:mod:`repro.checks.cfg`: a manually acquired resource (lock
``acquire()``, ``open()`` handle, executor pool, socket, temp
dir/file) must be released, or its ownership transferred, on *every*
path out of the function — including the paths an early ``return`` or
a ``raise`` takes. ``with``-managed acquisitions carry no obligation
(the context manager releases), and generator functions are skipped
(their resources outlive any one frame).

Two classifications per leaked token:

* **explicit-path leak** (ERROR): the CFG says some return/raise path
  reaches the function exit with the obligation still open;
* **exception-unsafe** (WARNING): every explicit path releases, but a
  statement between acquisition and release can raise while no
  enclosing ``try`` releases the resource in a handler or ``finally``
  — the PR 5 ``compile_model`` workdir leak shape.

RS005 and RS006 are shape rules on top of the same machinery: RS005
flags ``set_result``/``set_exception`` on a future the function did
not itself create unless the call is guarded by a ``try`` (another
resolver may have won the race — ``InvalidStateError``); RS006 proves
that the circuit-breaker probe slot taken by ``if breaker.allow():``
is paid back by a ``record_*`` call on every path out of the guarded
block — the PR 5 probe-slot leak, found in review, now a rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, \
    Union

from ..errors import CheckError
from .astutils import dotted_name
from .callgraph import CallGraph, FunctionInfo, build_call_graph, \
    iter_own_statements
from .cfg import CFG, WithEnter, WithExit, build_cfg, forward_dataflow
from .findings import Finding, Severity

__all__ = ["check_resource_lifecycles"]

#: resource kind -> (rule id, human noun).
_KIND_RULES: Dict[str, Tuple[str, str]] = {
    "file": ("RS003", "file handle"),
    "pool": ("RS004", "executor/pool"),
    "socket": ("RS007", "socket"),
    "tempdir": ("RS008", "temporary file/directory"),
}

_ACQUIRE_CALLS: Dict[str, str] = {
    "open": "file", "os.open": "file", "os.fdopen": "file",
    "socket.socket": "socket", "socket.create_connection": "socket",
    "tempfile.mkdtemp": "tempdir", "mkdtemp": "tempdir",
    "tempfile.mkstemp": "tempdir", "mkstemp": "tempdir",
    "tempfile.NamedTemporaryFile": "tempdir",
    "NamedTemporaryFile": "tempdir",
}
_ACQUIRE_SUFFIXES: Dict[str, str] = {
    "ProcessPoolExecutor": "pool", "ThreadPoolExecutor": "pool",
    "Pool": "pool",
}

_RECORD_METHODS = frozenset(
    {"record_success", "record_failure", "record_aborted"})


def _acquisition_kind(value: ast.expr) -> Optional[str]:
    """Resource kind acquired anywhere inside ``value``, if any."""
    for node in ast.walk(value):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name in _ACQUIRE_CALLS:
            return _ACQUIRE_CALLS[name]
        last = name.split(".")[-1]
        if last in _ACQUIRE_SUFFIXES:
            return _ACQUIRE_SUFFIXES[last]
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _event_discharges(event: object, name: str) -> bool:
    """Does this CFG event release ``name`` or transfer its ownership?"""
    if isinstance(event, (WithEnter, WithExit)):
        return False
    if not isinstance(event, ast.AST):
        return False
    node = event
    # return <expr referencing name>: ownership moves to the caller.
    if isinstance(node, ast.Return):
        return node.value is not None and name in _names_in(node.value)
    # self.x = name / container[k] = name: ownership moves to the object.
    if isinstance(node, ast.Assign):
        if name in _names_in(node.value) and any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets):
            return True
    # Any call that touches the name — name.close(), rmtree(name),
    # os.close(name), helper(name) — releases it or hands it off.
    for call in [c for c in ast.walk(node) if isinstance(c, ast.Call)]:
        receiver = dotted_name(call.func)
        if receiver is not None and "." in receiver \
                and receiver.split(".")[0] == name:
            return True
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if name in _names_in(arg):
                return True
    return False


def _lock_acquire_target(event: object) -> Optional[str]:
    """Dotted receiver of a manual ``<recv>.acquire()`` statement."""
    node = event
    if isinstance(node, ast.Assign):
        node = node.value
    elif isinstance(node, ast.Expr):
        node = node.value
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "acquire":
        return dotted_name(node.func.value)
    return None


def _lock_releases(event: object, receiver: str) -> bool:
    if not isinstance(event, ast.AST):
        return False
    for call in [c for c in ast.walk(event) if isinstance(c, ast.Call)]:
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr == "release" and \
                dotted_name(call.func.value) == receiver:
            return True
    return False


def _is_generator(func: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in iter_own_statements(func))


def _acquisitions(info: FunctionInfo) -> List[Tuple[str, str, int]]:
    """(kind, var name, line) for every manual acquisition assignment."""
    out: List[Tuple[str, str, int]] = []
    for node in info.own_statements():
        targets: Sequence[ast.expr] = ()
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        kind = _acquisition_kind(value)
        if kind is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.append((kind, target.id, node.lineno))
                break
            if isinstance(target, ast.Tuple):
                # fd, path = tempfile.mkstemp(): the fd carries the
                # obligation (the path is just a string).
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        out.append((kind, element.id, node.lineno))
                        break
                break
    return out


def _token(kind: str, name: str, line: int) -> str:
    return f"{kind}:{name}:{line}"


def _may_leak(cfg: CFG, tokens: Sequence[Tuple[str, str, int]],
              lock_tokens: Sequence[Tuple[str, int]]) -> FrozenSet[str]:
    """Tokens still open in some state reaching the CFG exit."""
    all_tokens = {(_token(kind, name, line), name, line)
                  for kind, name, line in tokens}
    all_tokens |= {(_token("lock", receiver, line), receiver, line)
                   for receiver, line in lock_tokens}
    lock_names = {receiver for receiver, _ in lock_tokens}

    def transfer(state: FrozenSet[str], event: object) -> FrozenSet[str]:
        out = set(state)
        for token, name, line in all_tokens:
            if token not in out:
                continue
            if token.startswith("lock:"):
                if _lock_releases(event, name):
                    out.discard(token)
                continue
            if _event_discharges(event, name):
                out.discard(token)
        line_no = getattr(event, "lineno", None)
        if isinstance(event, (ast.Assign, ast.AnnAssign)):
            for token, name, line in all_tokens:
                if line_no == line:
                    out.add(token)
        receiver = _lock_acquire_target(event)
        if receiver is not None and receiver in lock_names:
            for token, name, line in all_tokens:
                if token.startswith("lock:") and name == receiver \
                        and line_no == line:
                    out.add(token)
        return frozenset(out)

    states = forward_dataflow(
        cfg, transfer, frozenset(),
        lambda a, b: a | b)   # may-analysis: union at joins
    return states[CFG.EXIT]


def _releasing_trys(func: ast.AST, name: str,
                    is_lock: bool) -> List[ast.Try]:
    """Trys whose handler or finally releases ``name``."""
    out = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        protected: List[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            protected.extend(handler.body)
        for stmt in protected:
            released = (_lock_releases(stmt, name) if is_lock
                        else _event_discharges(stmt, name))
            if released:
                out.append(node)
                break
    return out


def _statement_region(func: ast.AST, try_nodes: Sequence[ast.Try]
                      ) -> Set[int]:
    """Line numbers covered by the bodies of the given trys."""
    lines: Set[int] = set()
    for try_node in try_nodes:
        for stmt in try_node.body + try_node.orelse:
            for child in ast.walk(stmt):
                line = getattr(child, "lineno", None)
                if line is not None:
                    lines.add(line)
    return lines


def _exception_unsafe(info: FunctionInfo, name: str, acquired_line: int,
                      is_lock: bool) -> Optional[int]:
    """Line of the first risky, unprotected statement — or ``None``.

    A statement is risky when it contains a call (so it can raise),
    sits after the acquisition, is not itself a discharge of the
    resource, and is not inside a ``try`` that releases the resource
    in a handler or ``finally``.
    """
    covered = _statement_region(
        info.node, _releasing_trys(info.node, name, is_lock))
    last_discharge = 0
    for node in info.own_statements():
        line = getattr(node, "lineno", 0)
        if line <= acquired_line:
            continue
        discharges = (_lock_releases(node, name) if is_lock
                      else _event_discharges(node, name))
        if discharges:
            last_discharge = max(last_discharge, line)
    if last_discharge == 0:
        return None   # never discharged: the CFG pass owns this case
    for node in info.own_statements():
        line = getattr(node, "lineno", 0)
        if not (acquired_line < line < last_discharge):
            continue
        if line in covered:
            continue
        if not any(isinstance(c, ast.Call) for c in ast.walk(node)):
            continue
        discharges = (_lock_releases(node, name) if is_lock
                      else _event_discharges(node, name))
        if discharges:
            continue
        return line
    return None


def _lifecycle_findings(info: FunctionInfo) -> List[Finding]:
    if _is_generator(info.node):
        return []
    tokens = _acquisitions(info)
    lock_tokens: List[Tuple[str, int]] = []
    for node in info.own_statements():
        if isinstance(node, (ast.Expr, ast.Assign)):
            receiver = _lock_acquire_target(node)
            if receiver is not None:
                lock_tokens.append((receiver, node.lineno))
    if not tokens and not lock_tokens:
        return []
    try:
        cfg = build_cfg(info.node)
    except CheckError:
        return []
    leaked = _may_leak(cfg, tokens, lock_tokens)

    findings: List[Finding] = []
    for kind, name, line in tokens:
        rule, noun = _KIND_RULES[kind]
        if _token(kind, name, line) in leaked:
            findings.append(Finding(
                rule, Severity.ERROR, info.rel_path, line,
                f"{noun} '{name}' acquired here may never be released: "
                f"some path out of {info.name}() exits with it open"))
            continue
        risky = _exception_unsafe(info, name, line, is_lock=False)
        if risky is not None:
            findings.append(Finding(
                rule, Severity.WARNING, info.rel_path, line,
                f"{noun} '{name}' is released only on the normal path: "
                f"an exception at line {risky} leaks it; release it in "
                f"a finally (or guard with try/except that cleans up)"))
    for receiver, line in lock_tokens:
        if _token("lock", receiver, line) in leaked:
            findings.append(Finding(
                "RS001", Severity.ERROR, info.rel_path, line,
                f"lock {receiver} acquired here may still be held when "
                f"{info.name}() exits; release it on every path or use "
                f"'with'"))
            continue
        risky = _exception_unsafe(info, receiver, line, is_lock=True)
        if risky is not None:
            findings.append(Finding(
                "RS002", Severity.WARNING, info.rel_path, line,
                f"lock {receiver} is released only on the normal path: "
                f"an exception at line {risky} leaves it held; use "
                f"'with' or release in a finally"))
    return findings


# -- RS005: unguarded future resolution -----------------------------------


def _local_future_names(info: FunctionInfo) -> Set[str]:
    names: Set[str] = set()
    for node in info.own_statements():
        targets: Sequence[ast.expr] = ()
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            # future: "Future[T]" = Future() — the batcher's idiom.
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call):
            continue
        callee = dotted_name(value.func) or ""
        if callee.split(".")[-1] == "Future":
            names |= {t.id for t in targets if isinstance(t, ast.Name)}
    return names


def _future_findings(info: FunctionInfo) -> List[Finding]:
    local = _local_future_names(info)
    findings = []

    def scan(node: ast.AST, guarded: bool) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and \
                    isinstance(child.func, ast.Attribute) and \
                    child.func.attr in ("set_result", "set_exception"):
                receiver = dotted_name(child.func.value)
                base = (receiver or "").split(".")[0]
                if base in local:
                    continue   # just created: nobody can race it
                if not guarded:
                    findings.append(Finding(
                        "RS005", Severity.WARNING, info.rel_path,
                        child.lineno,
                        f"unguarded {child.func.attr}() on shared "
                        f"future {receiver or '<expr>'}: a concurrent "
                        f"resolver (timeout, shutdown drain) raises "
                        f"InvalidStateError; wrap in try/except"))

    def walk(statements: Sequence[ast.stmt], guarded: bool) -> None:
        for node in statements:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(node, ast.Try):
                walk(node.body, True)
                walk(node.orelse, guarded)
                for handler in node.handlers:
                    walk(handler.body, guarded)
                walk(node.finalbody, guarded)
            elif isinstance(node, (ast.If, ast.While)):
                scan(node.test, guarded)
                walk(node.body, guarded)
                walk(node.orelse, guarded)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                scan(node.iter, guarded)
                walk(node.body, guarded)
                walk(node.orelse, guarded)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    scan(item.context_expr, guarded)
                walk(node.body, guarded)
            else:
                scan(node, guarded)

    walk(info.node.body, False)
    return findings


# -- RS006: breaker probe slots --------------------------------------------


def _probe_findings(info: FunctionInfo) -> List[Finding]:
    findings = []
    for node in info.own_statements():
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Call)
                and isinstance(test.func, ast.Attribute)
                and test.func.attr == "allow"):
            continue
        receiver = dotted_name(test.func.value)
        if receiver is None:
            continue
        synthetic = ast.FunctionDef(
            name=f"<{info.name}:allow@{node.lineno}>",
            args=ast.arguments(posonlyargs=[], args=[], kwonlyargs=[],
                               kw_defaults=[], defaults=[]),
            body=list(node.body), decorator_list=[],
            lineno=node.lineno, col_offset=node.col_offset)
        try:
            cfg = build_cfg(synthetic)
        except CheckError:
            continue   # break/continue into an outer loop: skip

        def transfer(state: FrozenSet[str],
                     event: object) -> FrozenSet[str]:
            if not isinstance(event, ast.AST):
                return state
            for call in [c for c in ast.walk(event)
                         if isinstance(c, ast.Call)]:
                if isinstance(call.func, ast.Attribute) and \
                        call.func.attr in _RECORD_METHODS and \
                        dotted_name(call.func.value) == receiver:
                    return state - {"probe"}
                for arg in list(call.args) + [kw.value
                                              for kw in call.keywords]:
                    if dotted_name(arg) == receiver:
                        return state - {"probe"}   # handed off
            return state

        states = forward_dataflow(cfg, transfer, frozenset({"probe"}),
                                  lambda a, b: a | b)
        if "probe" in states[CFG.EXIT]:
            findings.append(Finding(
                "RS006", Severity.ERROR, info.rel_path, node.lineno,
                f"breaker probe slot taken by {receiver}.allow() is not "
                f"released by record_success/record_failure/"
                f"record_aborted on every path out of the guarded "
                f"block; a leaked slot wedges the breaker half-open"))
    return findings


def check_resource_lifecycles(
        roots: Optional[Sequence[Union[str, Path]]] = None
        ) -> List[Finding]:
    """Run RS001-RS008 over ``roots`` (default: the repro package)."""
    graph: CallGraph = build_call_graph(roots)
    findings: List[Finding] = []
    for info in graph.functions.values():
        findings.extend(_lifecycle_findings(info))
        findings.extend(_future_findings(info))
        findings.extend(_probe_findings(info))
    unique: List[Finding] = []
    seen: Set[Tuple[str, str, int, str]] = set()
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    unique.sort(key=lambda f: (f.path, f.line, f.rule))
    return unique
