"""EX: exception-contract analysis (rules EX001-EX006).

The serving, parallel, and faults packages promise their callers a
closed error vocabulary: everything that escapes a public function is
a typed :class:`~repro.errors.ReproError` subtype, and the HTTP front
end maps each declared service error to a specific JSON envelope. This
analyzer proves the contract with the interprocedural raises summaries
of :mod:`repro.checks.interproc` — a ``raise`` five calls deep still
counts if no intermediate handler catches it.

=====  ==========================================================
EX001  public boundary function may raise a non-ReproError type
EX002  ``except BaseException`` without re-raise (eats Ctrl-C/SystemExit)
EX003  raise inside an except handler without ``from`` (loses cause)
EX004  ServingError subclass with no specific envelope in error_response
EX005  broad handler swallows load-control errors the body can raise
EX006  raising the bare ReproError/ServingError base class
=====  ==========================================================

EX001's summaries only see raises *written in this corpus*; a builtin
raising ``ValueError`` inside an unresolved call is invisible. That is
the honest trade: the rule enforces "we never wrote an untyped escape",
not "CPython cannot produce one".
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .astutils import dotted_name
from .callgraph import CallGraph, FunctionInfo, build_call_graph, \
    iter_own_statements
from .findings import Finding, Severity
from .interproc import (
    ExceptionHierarchy,
    RaisesSummary,
    compute_raises_summaries,
    escapes_of_statements,
    handler_type_names,
)
from .lint import _ALWAYS_ALLOWED_RAISES

__all__ = ["check_exception_contracts"]

#: Packages whose public functions form the typed-error boundary.
_BOUNDARY_PACKAGES = ("serving", "parallel", "faults")
#: Packages held to handler hygiene (EX003/EX005/EX006).
_SCOPE_PACKAGES = ("serving", "parallel", "faults", "treecomp")

#: Overload/deadline errors that double as control flow: swallowing one
#: in a broad handler silently converts load shedding into wrong answers.
_LOAD_CONTROL = frozenset({
    "QueueFullError", "LoadShedError", "RequestTimeoutError",
    "DeadlineExceeded", "ServiceClosedError",
})

_EXEMPT_ESCAPES = frozenset({"<unknown>", "Exception", "BaseException"}) \
    | _ALWAYS_ALLOWED_RAISES


def _in_packages(module: str, packages: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in packages)


def _has_bare_raise(body: Sequence[ast.stmt]) -> bool:
    for node in body:
        for child in ast.walk(node):
            if isinstance(child, ast.Raise) and child.exc is None:
                return True
    return False


def _references_name(body: Sequence[ast.stmt], name: str) -> bool:
    for node in body:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id == name:
                return True
    return False


def _escape_findings(graph: CallGraph, hierarchy: ExceptionHierarchy,
                     summaries: Dict[str, RaisesSummary]) -> List[Finding]:
    findings = []
    for qname, info in graph.functions.items():
        if not info.is_public or \
                not _in_packages(info.module, _BOUNDARY_PACKAGES):
            continue
        for escape in sorted(summaries[qname].escapes):
            if escape in _EXEMPT_ESCAPES:
                continue
            if "ReproError" in hierarchy.ancestors(escape):
                continue
            line = summaries[qname].raise_lines.get(escape, 0) \
                or info.node.lineno
            findings.append(Finding(
                "EX001", Severity.ERROR, info.rel_path, line,
                f"public {info.module}.{info.name}() may raise "
                f"{escape}, which is not a ReproError subtype; the "
                f"boundary contract promises typed errors only"))
    return findings


def _handler_findings(graph: CallGraph, hierarchy: ExceptionHierarchy,
                      summaries: Dict[str, RaisesSummary]) -> List[Finding]:
    findings = []
    for info in graph.functions.values():
        in_scope = _in_packages(info.module, _SCOPE_PACKAGES)
        for node in info.own_statements():
            if not isinstance(node, ast.Try):
                continue
            for index, handler in enumerate(node.handlers):
                names = handler_type_names(handler)
                if "BaseException" in names and handler.type is not None \
                        and not _has_bare_raise(handler.body):
                    findings.append(Finding(
                        "EX002", Severity.ERROR, info.rel_path,
                        handler.lineno,
                        "except BaseException without re-raise also "
                        "swallows KeyboardInterrupt/SystemExit; catch "
                        "Exception or re-raise"))
                if in_scope:
                    findings.extend(_swallow_findings(
                        graph, hierarchy, summaries, info, node,
                        index, handler, names))
            if in_scope:
                for handler in node.handlers:
                    findings.extend(_cause_findings(info, handler))
    return findings


def _cause_findings(info: FunctionInfo,
                    handler: ast.ExceptHandler) -> List[Finding]:
    findings = []
    queue: List[ast.AST] = list(handler.body)
    while queue:
        child = queue.pop(0)
        if isinstance(child, (ast.Try, ast.FunctionDef,
                              ast.AsyncFunctionDef, ast.Lambda)):
            continue   # nested try/def owns its own handlers
        queue.extend(ast.iter_child_nodes(child))
        if isinstance(child, ast.Raise) and child.exc is not None \
                and child.cause is None:
            target = child.exc
            if isinstance(target, ast.Name) and target.id == handler.name:
                continue   # re-raising the caught exception itself
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted_name(target) or "<exception>"
            findings.append(Finding(
                "EX003", Severity.WARNING, info.rel_path,
                child.lineno,
                f"raise {name.split('.')[-1]} inside an except "
                f"handler without 'from'; the original cause is "
                f"lost from tracebacks"))
    return findings


def _swallow_findings(graph: CallGraph, hierarchy: ExceptionHierarchy,
                      summaries: Dict[str, RaisesSummary],
                      info: FunctionInfo, node: ast.Try, index: int,
                      handler: ast.ExceptHandler,
                      names: List[str]) -> List[Finding]:
    if not ({"Exception", "BaseException"} & set(names)):
        return []
    # ``orelse`` raises are not caught by this try's handlers, so only
    # the body's escapes can be swallowed here.
    body_escapes = escapes_of_statements(
        graph, info, summaries, hierarchy, list(node.body))
    at_risk = {e for e in body_escapes if e in _LOAD_CONTROL}
    for earlier in node.handlers[:index]:
        earlier_names = handler_type_names(earlier)
        at_risk = {e for e in at_risk
                   if not any(hierarchy.catches(h, e)
                              for h in earlier_names)}
    if not at_risk:
        return []
    if _has_bare_raise(handler.body):
        return []
    if handler.name is not None and \
            _references_name(handler.body, handler.name):
        return []   # logged/re-wrapped/forwarded, not silently eaten
    return [Finding(
        "EX005", Severity.WARNING, info.rel_path, handler.lineno,
        f"broad except swallows load-control error(s) "
        f"{', '.join(sorted(at_risk))} the try body can raise; "
        f"re-raise them so overload handling stays visible")]


def _base_raise_findings(graph: CallGraph) -> List[Finding]:
    findings = []
    for info in graph.functions.values():
        if not _in_packages(info.module, _SCOPE_PACKAGES):
            continue
        for node in info.own_statements():
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted_name(target)
            base = name.split(".")[-1] if name else ""
            if base in ("ReproError", "ServingError"):
                findings.append(Finding(
                    "EX006", Severity.ERROR, info.rel_path, node.lineno,
                    f"raising the bare {base} base class; raise a "
                    f"specific subtype so callers and the HTTP envelope "
                    f"map can distinguish it"))
    return findings


def _isinstance_names(func: Union[ast.FunctionDef,
                                  ast.AsyncFunctionDef]) -> Set[str]:
    handled: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "isinstance" and len(node.args) == 2:
            types = node.args[1]
            elements = (types.elts if isinstance(types, ast.Tuple)
                        else [types])
            for element in elements:
                name = dotted_name(element)
                if name:
                    handled.add(name.split(".")[-1])
    return handled


def _envelope_findings(graph: CallGraph,
                       hierarchy: ExceptionHierarchy) -> List[Finding]:
    mapper: Optional[FunctionInfo] = None
    for info in graph.functions.values():
        if info.name == "error_response" and info.cls is None:
            mapper = info
            break
    if mapper is None:
        return []
    handled = _isinstance_names(mapper.node)
    findings = []
    serving_classes = sorted(
        name for name in hierarchy.bases
        if name != "ServingError"
        and "ServingError" in hierarchy.ancestors(name))
    for cls in serving_classes:
        ancestors = hierarchy.ancestors(cls) - {
            "ReproError", "Exception", "BaseException"}
        if handled & ancestors:
            continue
        findings.append(Finding(
            "EX004", Severity.ERROR, mapper.rel_path, mapper.node.lineno,
            f"ServingError subclass {cls} has no specific envelope "
            f"mapping in error_response(); it would fall through to "
            f"the generic ReproError 400, hiding its meaning from "
            f"clients"))
    return findings


def check_exception_contracts(
        roots: Optional[Sequence[Union[str, Path]]] = None
        ) -> List[Finding]:
    """Run EX001-EX006 over ``roots`` (default: the repro package)."""
    graph = build_call_graph(roots)
    hierarchy = ExceptionHierarchy.from_graph(graph)
    summaries = compute_raises_summaries(graph, hierarchy)
    findings = (_escape_findings(graph, hierarchy, summaries)
                + _handler_findings(graph, hierarchy, summaries)
                + _base_raise_findings(graph)
                + _envelope_findings(graph, hierarchy))
    unique: List[Finding] = []
    seen: Set[Tuple[str, str, int, str]] = set()
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            unique.append(finding)
    unique.sort(key=lambda f: (f.path, f.line, f.rule))
    return unique
