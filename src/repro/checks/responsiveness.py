"""Responsiveness analysis: unbounded blocking calls in serving code.

A serving thread that blocks forever cannot shed load, honor a
deadline, or drain on shutdown — every availability property this
package promises rests on *bounded* waits. This analyzer flags the
three stdlib calls that block indefinitely unless given a timeout:

=====  ==========================================================
RT001  ``<queue>.get()`` with no timeout (and not ``block=False``)
RT002  ``<future>.result()`` with no timeout
RT003  ``<thread>.join()`` with no timeout
=====  ==========================================================

Receivers are identified by naming convention (the same heuristic the
concurrency checker uses for ``join``): a ``.get()`` on something
called ``*queue*`` is a :class:`queue.Queue`, not a dict — dict lookups
are not blocking and stay out of scope. ``get_nowait``/``put_nowait``
and any call carrying a ``timeout`` (positional or keyword, even
``None``-valued expressions are accepted as "the author thought about
it" only when literal ``None`` is *not* passed) are bounded.

Scope defaults to ``src/repro/serving`` — the package whose threads
must stay responsive. The data pipeline's pool waits are governed by
:mod:`repro.parallel`'s own recovery ladder.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..errors import CheckError
from .astutils import PACKAGE_ROOT, iter_py_files, repo_relative
from .findings import Finding, Severity

__all__ = ["analyze_source", "check_responsiveness"]

_DEFAULT_SCOPE = (PACKAGE_ROOT / "serving",)

#: Receiver-name fragments identifying each blocking receiver kind.
_QUEUE_HINTS = ("queue",)
_FUTURE_HINTS = ("future", "fut", "promise")
_THREAD_HINTS = ("thread", "worker", "proc", "process")


def _receiver_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _matches(name: Optional[str], hints: Sequence[str]) -> bool:
    return name is not None and any(hint in name.lower()
                                    for hint in hints)


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _has_timeout(call: ast.Call, positional_index: int) -> bool:
    """True when the call passes a (non-``None``) timeout bound."""
    if len(call.args) > positional_index and \
            not _is_none(call.args[positional_index]):
        return True
    for keyword in call.keywords:
        if keyword.arg == "timeout" and not _is_none(keyword.value):
            return True
    return False


def _is_nonblocking_get(call: ast.Call) -> bool:
    """``get(False)`` / ``get(block=False)`` return immediately."""
    if call.args and isinstance(call.args[0], ast.Constant) \
            and call.args[0].value is False:
        return True
    return any(keyword.arg == "block"
               and isinstance(keyword.value, ast.Constant)
               and keyword.value.value is False
               for keyword in call.keywords)


def _check_call(call: ast.Call, rel: str) -> Optional[Finding]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _receiver_name(func.value)
    if func.attr == "get" and _matches(receiver, _QUEUE_HINTS):
        # Queue.get(block=True, timeout=None): timeout is positional 1.
        if _is_nonblocking_get(call) or _has_timeout(call, 1):
            return None
        return Finding(
            "RT001", Severity.ERROR, rel, call.lineno,
            f"{receiver}.get() blocks forever without a timeout; a "
            f"wedged producer leaves this thread unresponsive to "
            f"shutdown and deadlines — use get(timeout=...) in a loop")
    if func.attr == "result" and _matches(receiver, _FUTURE_HINTS):
        if _has_timeout(call, 0):
            return None
        return Finding(
            "RT002", Severity.ERROR, rel, call.lineno,
            f"{receiver}.result() blocks forever without a timeout; a "
            f"lost worker leaves the caller waiting indefinitely — "
            f"pass result(timeout=...)")
    if func.attr == "join" and _matches(receiver, _THREAD_HINTS):
        if isinstance(func.value, ast.Constant):
            return None   # str.join on a literal
        if _has_timeout(call, 0):
            return None
        return Finding(
            "RT003", Severity.ERROR, rel, call.lineno,
            f"{receiver}.join() blocks forever without a timeout; a "
            f"hung thread turns shutdown into a hang — pass "
            f"join(timeout=...) and handle the still-alive case")
    return None


def analyze_source(source: str, path: str) -> List[Finding]:
    """Flag unbounded blocking calls in one source file."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise CheckError(f"cannot parse {path}: {exc}") from exc
    rel = repo_relative(path) if Path(path).exists() else path
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            finding = _check_call(node, rel)
            if finding is not None:
                findings.append(finding)
    return findings


def check_responsiveness(paths: Optional[Sequence[Union[str, Path]]] = None
                         ) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` (default: serving/)."""
    findings: List[Finding] = []
    for file_path in iter_py_files(paths or _DEFAULT_SCOPE):
        findings.extend(analyze_source(file_path.read_text(),
                                       str(file_path)))
    return list(dict.fromkeys(findings))
