"""Interprocedural hot-path cost analyzer (HP rules).

The correctness analyzers (DT/EX/RS/LK/...) prove the system does the
right thing; this one proves it does the right thing *fast enough to
matter*. T3's usefulness hinges on prediction latency (the paper's
22 µs → 4 µs headline), and the roadmap names two standing perf debts —
one ctypes FFI round-trip per prediction in ``treecomp`` (item 2) and
per-task pickling in ``repro.parallel`` (item 5). Every HP rule below
detects one of those shapes, or a close cousin, statically.

The engine: :func:`~repro.checks.interproc.compute_cost_summaries`
computes a bottom-up fixpoint of per-function **cost summaries**
(FFI/pickle/IO/subprocess effects, loop-nest depth, per-iteration
allocation) over the shared call graph. A configurable set of **hot
roots** — the serving predict chain, the micro-batcher, featurization
fill, the treecomp predict entry points, and the process-pool fan-out —
seeds a forward reachability pass; rules only fire inside functions a
hot root can reach, so cold setup code (training, CLI, compilation)
never produces noise. Roots live in ``checks_baseline.toml`` under
``[hotpath]``, next to the suppressions::

    [hotpath]
    roots = ["PredictionService.predict", "process_map"]
    per_element_roots = ["CompiledTreeModel.predict_one"]

``per_element_roots`` are entry points *called once per element* by
their callers; a single FFI or pickle call in one costs a round-trip
per prediction even with no loop in sight.

Rules
-----
HP001  per-element ctypes/FFI round-trip on a hot path (ROADMAP item 2)
HP002  accumulating whole-array allocation in a hot loop (the PR 4
       histogram-temporaries shape)
HP003  per-item submission across a process boundary in a hot loop
       (ROADMAP item 5)
HP004  blocking IO/subprocess/sleep while holding a lock on a hot path
       (must-held lock dataflow from :mod:`.cfg`, callee effects from
       the cost summaries)
HP005  loop-invariant pure call hoistable out of a hot loop
HP006  loop-invariant f-string parts / eager logging format in a hot
       loop (precompute the label outside)
HP007  exception-as-control-flow per iteration (try/except as lookup)
HP008  membership test against a list inside a hot loop (use a set)
HP009  the same loop-invariant attribute chain resolved repeatedly in
       one hot loop (hoist it into a local)
HP010  known-slow stdlib call (pickle / re.compile / json) per element
       on a hot path
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import CheckError
from .astutils import dotted_name
from .callgraph import CallGraph, FunctionInfo, build_call_graph
from .cfg import build_cfg, forward_dataflow
# The must-held lock machinery is concurrency.py's; HP004 reuses it
# rather than re-deriving lock discovery and transfer semantics.
from .concurrency import _class_locks, _make_transfer
from .findings import Finding, Severity, _parse_toml
from .interproc import (
    COST_EFFECTS,
    CostSummary,
    classify_cost_effect,
    collect_ffi_attrs,
    compute_cost_summaries,
    handler_type_names,
)

__all__ = [
    "DEFAULT_HOT_ROOTS",
    "DEFAULT_PER_ELEMENT_ROOTS",
    "check_hotpath",
    "load_hot_root_config",
]

#: Mirrors ``driver.DEFAULT_BASELINE_NAME`` (the driver imports this
#: module, so importing back would be circular).
_CONFIG_NAME = "checks_baseline.toml"

#: Built-in hot roots, used when no ``[hotpath]`` config is present.
#: Keep in sync with the ``[hotpath]`` section of
#: ``checks_baseline.toml`` — the config is authoritative for repo runs.
DEFAULT_HOT_ROOTS: Tuple[str, ...] = (
    # serving request path
    "PredictionService.predict",
    "PredictionService.predict_many",
    "MicroBatcher._evaluate",
    # metrics scrape path (rendered per Prometheus poll)
    "MetricsRegistry.render",
    "Counter.render",
    "Gauge.render",
    "Histogram.render",
    # featurization fill
    "FeatureRegistry.fill_matrix",
    # model inference entry points (batch)
    "T3Model.predict_raw_batch",
    "CompiledTreeModel.predict",
    "PythonScalarModel.predict",
    # process fan-out and its workers
    "process_map",
    "_build_chunk",
    # lifecycle: the observation hook rides the serving request path
    "PredictionService.observe",
    "LifecycleManager.on_observation",
    "ObservationLog.append",
)

#: Entry points invoked once per element by their callers.
DEFAULT_PER_ELEMENT_ROOTS: Tuple[str, ...] = (
    "CompiledTreeModel.predict_one",
    "T3Model.predict_raw_one",
    "PythonScalarModel.predict_one",
)

_SLOW_STDLIB_TAGS = frozenset({"pickle", "re-compile", "json"})
_BLOCKING_TAGS = frozenset({"sleep", "subprocess", "io"})

#: Pure builtins worth hoisting when every argument is loop-invariant.
_PURE_CALLS = frozenset({
    "len", "min", "max", "sum", "abs", "float", "int", "str", "bool",
    "round", "repr", "tuple", "frozenset",
    "math.sqrt", "math.log", "math.exp", "math.floor", "math.ceil",
})

#: Exception types whose catch-and-discard in a loop is a lookup in
#: disguise (use ``.get()`` / a membership test instead).
_LOOKUP_ERRORS = frozenset({
    "KeyError", "IndexError", "AttributeError", "StopIteration",
    "ValueError", "TypeError",
})

#: Constructors whose handles ship work across a process boundary.
_PROCESS_POOLS = frozenset({"ProcessPoolExecutor", "Pool"})

_LOG_METHODS = frozenset({"debug", "info", "warning", "error",
                          "exception", "critical"})


# -- configuration -----------------------------------------------------------


def load_hot_root_config(config_path: Optional[Union[str, Path]] = None
                         ) -> Tuple[List[str], List[str]]:
    """Hot-root patterns from the ``[hotpath]`` config section.

    Reads ``checks_baseline.toml`` (or ``config_path``); a missing file
    or section falls back to the built-in defaults. Patterns are
    matched against function qnames: ``"Class.method"`` and
    ``"module:Class.method"`` match exactly, a bare name matches every
    function with that simple name.
    """
    path = Path(config_path) if config_path is not None \
        else Path(_CONFIG_NAME)
    if not path.exists():
        return list(DEFAULT_HOT_ROOTS), list(DEFAULT_PER_ELEMENT_ROOTS)
    data = _parse_toml(path.read_text(), str(path))
    section = data.get("hotpath", {})
    if not isinstance(section, dict):
        raise CheckError(
            f"invalid hot-root config in {path}: [hotpath] must be a table")
    roots = section.get("roots", list(DEFAULT_HOT_ROOTS))
    per_element = section.get("per_element_roots",
                              list(DEFAULT_PER_ELEMENT_ROOTS))
    for key, value in (("roots", roots),
                       ("per_element_roots", per_element)):
        if not (isinstance(value, list)
                and all(isinstance(item, str) for item in value)):
            raise CheckError(
                f"invalid hot-root config in {path}: hotpath.{key} "
                "must be an array of strings")
    return list(roots), list(per_element)


def _matches(pattern: str, info: FunctionInfo) -> bool:
    if ":" in pattern:
        return info.qname == pattern
    if "." in pattern:
        return info.qname.endswith(f":{pattern}")
    return info.name == pattern


def _match_roots(graph: CallGraph,
                 patterns: Sequence[str]) -> Dict[str, str]:
    """qname -> the root pattern that selected it."""
    out: Dict[str, str] = {}
    for qname, info in graph.functions.items():
        for pattern in patterns:
            if _matches(pattern, info):
                out.setdefault(qname, pattern)
                break
    return out


def _hot_set(graph: CallGraph, roots: Dict[str, str]) -> Dict[str, str]:
    """Forward reachability from the roots: qname -> seeding root."""
    via: Dict[str, str] = dict(roots)
    queue = list(roots)
    while queue:
        qname = queue.pop(0)
        info = graph.functions.get(qname)
        if info is None:
            continue
        for site in info.calls:
            for callee in site.callees:
                if callee not in via:
                    via[callee] = via[qname]
                    queue.append(callee)
    return via


# -- scope walking helpers ---------------------------------------------------


def _walk_scope(nodes: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """BFS over descendants, staying out of nested def/class/lambda."""
    queue: List[ast.AST] = list(nodes)
    while queue:
        node = queue.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        queue.extend(ast.iter_child_nodes(node))


def _store_names(nodes: Sequence[ast.AST]) -> Set[str]:
    return {node.id for node in _walk_scope(nodes)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Store)}


def _mutated_chains(nodes: Sequence[ast.AST]) -> Set[str]:
    """Dotted chains plausibly mutated per iteration.

    Covers receivers of method calls (``in_tree.add``,
    ``self._entries.popitem``) and attribute assignment targets —
    rebinding alone misses container mutation, which would make
    ``len(self._entries)`` in an eviction loop look hoistable. Bare
    ``self``/``cls`` receivers are exempt: a self-method call rarely
    invalidates reading an unrelated field, and treating it as a wild
    write would silence every method body.
    """
    out: Set[str] = set()
    for node in _walk_scope(nodes):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            chain = dotted_name(node.func.value)
            if chain is not None and chain not in ("self", "cls"):
                out.add(chain)
        elif isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            chain = dotted_name(node)
            if chain is not None:
                out.add(chain)
    return out


def _touches_mutated(chain: str, mutated: Set[str]) -> bool:
    return any(chain == c or chain.startswith(f"{c}.")
               or c.startswith(f"{chain}.") for c in mutated)


@dataclass
class _Loop:
    """One per-iteration scope of a hot function."""

    line: int
    #: nodes evaluated once per iteration.
    body: List[ast.AST]
    #: names rebound per iteration — everything else is loop-invariant.
    variant: Set[str]
    #: dotted chains mutated per iteration (method-call receivers).
    mutated: Set[str]
    #: False for comprehensions (statement rules don't apply there).
    is_statement_loop: bool

    def is_invariant(self, node: ast.AST) -> bool:
        """No per-iteration name, mutated chain, or call in ``node``."""
        for child in _walk_scope([node]):
            if isinstance(child, ast.Call):
                return False
            if isinstance(child, ast.Name):
                # Exact match only: reading `self` stays invariant when
                # `self._queue` is mutated, but `in_tree` does not once
                # `in_tree.add` runs in-loop.
                if child.id in self.variant or child.id in self.mutated:
                    return False
            elif isinstance(child, ast.Attribute):
                chain = dotted_name(child)
                if chain is not None \
                        and _touches_mutated(chain, self.mutated):
                    return False
        return True


def _loops_of(info: FunctionInfo) -> List[_Loop]:
    loops: List[_Loop] = []
    for node in info.own_statements():
        if isinstance(node, (ast.For, ast.AsyncFor)):
            body: List[ast.AST] = list(node.body)
            variant = _store_names(body) | _store_names([node.target])
            loops.append(_Loop(node.lineno, body, variant,
                               _mutated_chains(body), True))
        elif isinstance(node, ast.While):
            body = list(node.body) + [node.test]
            loops.append(_Loop(node.lineno, body, _store_names(body),
                               _mutated_chains(body), True))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            body = []
            if isinstance(node, ast.DictComp):
                body.extend([node.key, node.value])
            else:
                body.append(node.elt)
            targets: List[ast.AST] = []
            for index, gen in enumerate(node.generators):
                body.extend(gen.ifs)
                if index > 0:
                    body.append(gen.iter)
                targets.append(gen.target)
            variant = _store_names(body) | _store_names(targets)
            loops.append(_Loop(node.lineno, body, variant,
                               _mutated_chains(body), False))
    return loops


def _unconditional_calls(body: Sequence[ast.AST]) -> List[ast.Call]:
    """Calls executed on every iteration (no branch/try/nested loop)."""
    out: List[ast.Call] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda, ast.If, ast.IfExp,
                             ast.Try, ast.For, ast.AsyncFor, ast.While,
                             ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return
        if isinstance(node, ast.BoolOp):
            visit(node.values[0])   # later operands may short-circuit
            return
        if isinstance(node, ast.Call):
            out.append(node)
        for child in ast.iter_child_nodes(node):
            visit(child)

    for node in body:
        visit(node)
    return out


# -- the per-function scan ---------------------------------------------------


class _FunctionScan:
    """All HP rule checks for one hot function."""

    def __init__(self, graph: CallGraph, info: FunctionInfo,
                 summaries: Dict[str, CostSummary],
                 ffi_attrs: Dict[str, FrozenSet[str]],
                 hot_via: str, per_element: bool):
        self.graph = graph
        self.info = info
        self.summaries = summaries
        cls_key = (f"{info.module}:{info.cls}"
                   if info.cls is not None else "")
        self.class_ffi = ffi_attrs.get(cls_key, frozenset())
        self.hot_via = hot_via
        self.per_element = per_element
        self.findings: List[Finding] = []
        self._callees: Dict[int, Tuple[str, ...]] = {
            id(site.node): site.callees for site in info.calls}
        self._pool_names = self._find_pool_names()
        self._list_names = self._find_list_names()

    # -- shared helpers ------------------------------------------------------

    def _label(self) -> str:
        name = (f"{self.info.cls}.{self.info.name}"
                if self.info.cls else self.info.name)
        return f"{name}() (hot via {self.hot_via})"

    def _emit(self, rule: str, severity: Severity, line: int,
              message: str) -> None:
        self.findings.append(Finding(rule, severity, self.info.rel_path,
                                     line, message))

    def _callee_effects(self, call: ast.Call) -> Dict[str, str]:
        """effect tag -> callee qname, over every resolved callee."""
        out: Dict[str, str] = {}
        for qname in self._callees.get(id(call), ()):
            summary = self.summaries.get(qname)
            if summary is None:
                continue
            for tag in summary.effects:
                out.setdefault(tag, qname)
        return out

    def _find_pool_names(self) -> Set[str]:
        """Local names bound to a process-pool handle."""
        names: Set[str] = set()

        def pool_call(value: ast.expr) -> bool:
            if not isinstance(value, ast.Call):
                return False
            name = dotted_name(value.func)
            return (name is not None
                    and name.split(".")[-1] in _PROCESS_POOLS)

        for node in self.info.own_statements():
            if isinstance(node, ast.Assign) and pool_call(node.value):
                names |= _store_names(list(node.targets))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if pool_call(item.context_expr) \
                            and item.optional_vars is not None:
                        names |= _store_names([item.optional_vars])
        return names

    def _find_list_names(self) -> Set[str]:
        """Local names assigned from list-producing expressions."""
        names: Set[str] = set()
        for node in self.info.own_statements():
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            value = node.value
            is_list = isinstance(value, (ast.List, ast.ListComp))
            if isinstance(value, ast.Call):
                name = dotted_name(value.func)
                is_list = name in ("list", "sorted")
            if is_list:
                names.add(node.targets[0].id)
        return names

    # -- entry point ---------------------------------------------------------

    def run(self) -> List[Finding]:
        for loop in _loops_of(self.info):
            self._scan_loop_calls(loop)
            # HP006 is expression-level, so it applies inside
            # comprehensions too; the statement rules below do not.
            self._scan_hp006(loop)
            if loop.is_statement_loop:
                self._scan_hp002(loop)
                self._scan_hp005(loop)
                self._scan_hp007(loop)
                self._scan_hp008(loop)
                self._scan_hp009(loop)
        if self.per_element:
            self._scan_per_element()
        self._scan_hp004()
        self._scan_logging()
        return self.findings

    # -- HP001 / HP003 / HP010: calls per iteration --------------------------

    def _scan_loop_calls(self, loop: _Loop) -> None:
        for call in (n for n in _walk_scope(loop.body)
                     if isinstance(n, ast.Call)):
            tag = classify_cost_effect(call, self.class_ffi)
            if tag == "ffi":
                self._emit(
                    "HP001", Severity.ERROR, call.lineno,
                    f"{self._label()}: ctypes FFI round-trip inside a "
                    f"loop — one native call per element; batch the "
                    f"elements into a single FFI call")
            elif tag in _SLOW_STDLIB_TAGS:
                self._emit(
                    "HP010", Severity.WARNING, call.lineno,
                    f"{self._label()}: {COST_EFFECTS[tag]} inside a "
                    f"loop — hoist it out or cache the result")
            effects = self._callee_effects(call)
            if tag != "ffi" and "ffi" in effects:
                self._emit(
                    "HP001", Severity.ERROR, call.lineno,
                    f"{self._label()}: calls {effects['ffi']} inside a "
                    f"loop, paying a ctypes FFI round-trip per element; "
                    f"batch the elements into a single FFI call")
            for slow in sorted(_SLOW_STDLIB_TAGS & set(effects)):
                if slow == tag:
                    continue
                self._emit(
                    "HP010", Severity.WARNING, call.lineno,
                    f"{self._label()}: calls {effects[slow]} inside a "
                    f"loop, paying {COST_EFFECTS[slow]} per element")
            self._check_hp003(call)

    def _check_hp003(self, call: ast.Call) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("submit", "apply_async")):
            return
        receiver = func.value
        if isinstance(receiver, ast.Name) \
                and receiver.id in self._pool_names:
            self._emit(
                "HP003", Severity.ERROR, call.lineno,
                f"{self._label()}: per-item {receiver.id}.{func.attr}() "
                f"across a process boundary — each submission pays "
                f"pickle + IPC; fan out chunks instead of items")

    # -- HP002: accumulating allocation --------------------------------------

    def _scan_hp002(self, loop: _Loop) -> None:
        for node in _walk_scope(loop.body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                value = node.value
                if isinstance(value, ast.Call) \
                        and self._is_copy_allocator(value) \
                        and self._name_in(target, value.args):
                    self._emit(
                        "HP002", Severity.ERROR, node.lineno,
                        f"{self._label()}: {target} re-allocated by "
                        f"{dotted_name(value.func)}() every iteration — "
                        f"O(n²) copying; preallocate once and fill, or "
                        f"collect parts and concatenate after the loop")
                    continue
                if isinstance(value, ast.BinOp) \
                        and isinstance(value.op, ast.Add) \
                        and self._name_in(target, [value.left,
                                                   value.right]) \
                        and any(isinstance(n, ast.List) for n in
                                _walk_scope([value])):
                    self._emit(
                        "HP002", Severity.ERROR, node.lineno,
                        f"{self._label()}: {target} = {target} + [...] "
                        f"copies the whole list every iteration — "
                        f"append in place instead")
                    continue
            if isinstance(node, ast.Call) \
                    and self._is_copy_allocator(node):
                name = dotted_name(node.func)
                self._emit(
                    "HP002", Severity.ERROR, node.lineno,
                    f"{self._label()}: {name}() allocates a fresh array "
                    f"copy every iteration — hoist it out of the loop "
                    f"or preallocate")

    @staticmethod
    def _is_copy_allocator(call: ast.Call) -> bool:
        name = dotted_name(call.func)
        if name is None:
            return False
        parts = name.split(".")
        return (len(parts) == 2 and parts[0] in ("np", "numpy")
                and parts[1] in ("append", "concatenate", "vstack",
                                 "hstack"))

    @staticmethod
    def _name_in(name: str, nodes: Sequence[ast.AST]) -> bool:
        return any(isinstance(n, ast.Name) and n.id == name
                   for n in _walk_scope(list(nodes)))

    # -- HP005: loop-invariant pure calls ------------------------------------

    def _scan_hp005(self, loop: _Loop) -> None:
        for call in _unconditional_calls(loop.body):
            name = dotted_name(call.func)
            if name is None or name not in _PURE_CALLS:
                continue
            if call.keywords or not call.args:
                continue
            if all(loop.is_invariant(arg) for arg in call.args):
                self._emit(
                    "HP005", Severity.WARNING, call.lineno,
                    f"{self._label()}: {name}() has loop-invariant "
                    f"arguments but runs every iteration — hoist it "
                    f"out of the loop")

    # -- HP006: label formatting per iteration -------------------------------

    def _scan_hp006(self, loop: _Loop) -> None:
        skip = self._failure_path_nodes(loop.body)
        for node in _walk_scope(loop.body):
            if not isinstance(node, ast.JoinedStr) or id(node) in skip:
                continue
            parts = [part for part in node.values
                     if isinstance(part, ast.FormattedValue)]
            if not parts:
                continue
            invariant = [part for part in parts
                         if loop.is_invariant(part.value)]
            if len(invariant) == len(parts):
                self._emit(
                    "HP006", Severity.WARNING, node.lineno,
                    f"{self._label()}: f-string is entirely "
                    f"loop-invariant but re-formats every iteration — "
                    f"build it once outside the loop")
            elif any(isinstance(part.value, ast.Attribute)
                     for part in invariant):
                # An invariant *attribute chain* formatted per
                # iteration (the `self.name` metric-label shape);
                # plain invariant locals mixed into a varying string
                # are left alone — there is nothing cheaper to hoist.
                self._emit(
                    "HP006", Severity.WARNING, node.lineno,
                    f"{self._label()}: loop-invariant attribute "
                    f"re-resolved and re-formatted every iteration — "
                    f"precompute the label prefix outside the loop")

    @staticmethod
    def _failure_path_nodes(body: Sequence[ast.AST]) -> Set[int]:
        """ids of nodes only evaluated on raise/assert-failure paths."""
        out: Set[int] = set()
        for node in _walk_scope(body):
            if isinstance(node, ast.Raise) and node.exc is not None:
                out.update(id(n) for n in _walk_scope([node.exc]))
            elif isinstance(node, ast.Assert) and node.msg is not None:
                out.update(id(n) for n in _walk_scope([node.msg]))
        return out

    # -- HP007: exception-as-control-flow ------------------------------------

    def _scan_hp007(self, loop: _Loop) -> None:
        for node in _walk_scope(loop.body):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                caught = set(handler_type_names(handler))
                if not (caught & _LOOKUP_ERRORS):
                    continue
                if self._is_trivial_handler(handler.body):
                    self._emit(
                        "HP007", Severity.WARNING, node.lineno,
                        f"{self._label()}: try/except "
                        f"{'/'.join(sorted(caught & _LOOKUP_ERRORS))} "
                        f"as per-iteration control flow — exception "
                        f"setup costs more than a .get()/membership "
                        f"check on the hot path")
                    break

    @staticmethod
    def _is_trivial_handler(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Assign) \
                    and isinstance(stmt.value, ast.Constant):
                continue
            return False
        return True

    # -- HP008: list membership in a loop ------------------------------------

    def _scan_hp008(self, loop: _Loop) -> None:
        for node in _walk_scope(loop.body):
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                if isinstance(comparator, ast.Name) \
                        and comparator.id in self._list_names \
                        and comparator.id not in loop.variant:
                    self._emit(
                        "HP008", Severity.WARNING, node.lineno,
                        f"{self._label()}: membership test against "
                        f"list {comparator.id!r} every iteration — "
                        f"O(n) per probe; build a set once outside "
                        f"the loop")

    # -- HP009: repeated attribute-chain resolution --------------------------

    def _scan_hp009(self, loop: _Loop) -> None:
        nodes = list(_walk_scope(loop.body))
        call_funcs = {id(n.func) for n in nodes
                      if isinstance(n, ast.Call)}
        inner = {id(n.value) for n in nodes
                 if isinstance(n, ast.Attribute)
                 and isinstance(n.value, ast.Attribute)}
        counts: Dict[str, List[int]] = {}
        for node in nodes:
            if not isinstance(node, ast.Attribute) \
                    or not isinstance(node.ctx, ast.Load) \
                    or id(node) in inner or id(node) in call_funcs:
                continue
            chain = dotted_name(node)
            if chain is None:
                continue
            root = chain.split(".", 1)[0]
            if root in loop.variant:
                continue
            if _touches_mutated(chain, loop.mutated):
                continue   # the chain (or a prefix) is written in-loop
            counts.setdefault(chain, []).append(node.lineno)
        for chain, lines in counts.items():
            depth = chain.count(".")
            if (depth >= 2 and len(lines) >= 3) \
                    or (depth == 1 and len(lines) >= 4):
                self._emit(
                    "HP009", Severity.WARNING, lines[0],
                    f"{self._label()}: {chain} resolved {len(lines)} "
                    f"times in one loop — {depth + 1} dict lookups per "
                    f"use; hoist it into a local before the loop")

    # -- per-element roots: HP001/HP010 without a loop -----------------------

    def _scan_per_element(self) -> None:
        ffi_lines: List[int] = []
        slow_lines: Dict[str, List[int]] = {}
        for node in self.info.own_statements():
            if not isinstance(node, ast.Call):
                continue
            tag = classify_cost_effect(node, self.class_ffi)
            if tag == "ffi":
                ffi_lines.append(node.lineno)
            elif tag in _SLOW_STDLIB_TAGS:
                slow_lines.setdefault(tag, []).append(node.lineno)
        if ffi_lines:
            count = len(set(ffi_lines))
            self._emit(
                "HP001", Severity.ERROR, min(ffi_lines),
                f"{self._label()}: per-element entry point pays "
                f"{count} ctypes FFI round-trip(s) per prediction — "
                f"route bulk work through the batch entry point")
        for tag, lines in sorted(slow_lines.items()):
            self._emit(
                "HP010", Severity.WARNING, min(lines),
                f"{self._label()}: per-element entry point pays "
                f"{COST_EFFECTS[tag]} per prediction — cache or batch "
                f"it")

    # -- HP004: blocking while holding a lock --------------------------------

    def _scan_hp004(self) -> None:
        if self.info.cls is None:
            return
        module = self.graph.modules.get(self.info.module)
        if module is None:
            return
        cls_node = module.classes.get(self.info.cls)
        if cls_node is None:
            return
        locks = _class_locks(cls_node)
        if not locks:
            return
        cfg = build_cfg(self.info.node)
        transfer = _make_transfer(locks)
        must = forward_dataflow(cfg, transfer, frozenset(),
                                lambda a, b: a & b)
        for block in cfg.blocks:
            state = must[block.index]
            for event in block.events:
                if state and isinstance(event, ast.AST):
                    held = ", ".join(f"self.{name}"
                                     for name in sorted(state))
                    self._blocking_in_event(event, held)
                state = transfer(state, event)

    def _blocking_in_event(self, event: ast.AST, held: str) -> None:
        for call in (n for n in _walk_scope([event])
                     if isinstance(n, ast.Call)):
            tag = classify_cost_effect(call, self.class_ffi)
            if tag in _BLOCKING_TAGS:
                self._emit(
                    "HP004", Severity.ERROR, call.lineno,
                    f"{self._label()}: {COST_EFFECTS[tag]} while "
                    f"holding {held} — every hot-path caller "
                    f"contending for the lock stalls behind it")
                continue
            effects = self._callee_effects(call)
            for blocking in sorted(_BLOCKING_TAGS & set(effects)):
                self._emit(
                    "HP004", Severity.ERROR, call.lineno,
                    f"{self._label()}: calls {effects[blocking]} "
                    f"(which performs {COST_EFFECTS[blocking]}) while "
                    f"holding {held} — move the slow work outside "
                    f"the lock")
                break

    # -- HP006 (function-wide): eager logging format -------------------------

    def _scan_logging(self) -> None:
        for call in (n for n in _walk_scope(list(self.info.node.body))
                     if isinstance(n, ast.Call)):
            func = call.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _LOG_METHODS):
                continue
            receiver = dotted_name(func.value)
            if receiver is None \
                    or "log" not in receiver.rsplit(".", 1)[-1].lower():
                continue
            if any(isinstance(arg, ast.JoinedStr) for arg in call.args):
                self._emit(
                    "HP006", Severity.WARNING, call.lineno,
                    f"{self._label()}: {receiver}.{func.attr}(f\"...\") "
                    f"formats eagerly even when the level is disabled — "
                    f"use lazy %-style arguments on the hot path")


# -- entry point -------------------------------------------------------------


def check_hotpath(roots: Optional[Sequence[Union[str, Path]]] = None,
                  config_path: Optional[Union[str, Path]] = None,
                  hot_roots: Optional[Sequence[str]] = None,
                  per_element_roots: Optional[Sequence[str]] = None
                  ) -> List[Finding]:
    """Run HP001–HP010 over the corpus under ``roots``.

    ``hot_roots``/``per_element_roots`` override the ``[hotpath]``
    config section (used by tests with synthetic corpora); ``roots``
    selects the source tree (default: the installed ``repro`` package).
    """
    if hot_roots is None or per_element_roots is None:
        config_roots, config_per_element = load_hot_root_config(config_path)
        if hot_roots is None:
            hot_roots = config_roots
        if per_element_roots is None:
            per_element_roots = config_per_element

    graph = build_call_graph(roots=roots)
    summaries = compute_cost_summaries(graph)
    ffi_attrs = collect_ffi_attrs(graph)

    root_map = _match_roots(graph, list(hot_roots))
    per_element_map = _match_roots(graph, list(per_element_roots))
    for qname, pattern in per_element_map.items():
        root_map.setdefault(qname, pattern)
    hot_via = _hot_set(graph, root_map)

    findings: List[Finding] = []
    for qname in sorted(hot_via):
        info = graph.functions[qname]
        findings.extend(_FunctionScan(
            graph, info, summaries, ffi_attrs, hot_via[qname],
            per_element=qname in per_element_map).run())

    deduped: Dict[Tuple[str, str, int], Finding] = {}
    for finding in findings:
        deduped.setdefault((finding.rule, finding.path, finding.line),
                           finding)
    return sorted(deduped.values(),
                  key=lambda f: (f.path, f.line, f.rule))
