"""Deterministic random-number utilities.

Every stochastic component in the library (query generation, simulator
noise, tree training subsampling, neural-network initialization) derives
its randomness from a :class:`numpy.random.Generator` seeded through this
module, so experiments are reproducible end to end.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used by all default experiment configurations.
DEFAULT_SEED = 0x54335F33  # "T3_3"


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create a fresh generator from an integer seed."""
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from a base seed and a sequence of labels.

    The derivation is a stable hash, so components that receive the same
    ``(base_seed, labels)`` pair always observe the same random stream,
    regardless of call order elsewhere in the program.
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode())
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "little")


def derive_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Create a generator for a named sub-component (see :func:`derive_seed`)."""
    return np.random.default_rng(derive_seed(base_seed, *labels))
