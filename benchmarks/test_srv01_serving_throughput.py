"""Serving throughput — micro-batched service vs sequential predict_query.

Beyond-paper experiment for the serving subsystem (ISSUE 1): on a
cached-plan workload, the service's request path is plan-cache lookup +
one coalesced native batch call, while the offline path re-parses,
re-optimizes, and re-featurizes every request. The acceptance bar is a
>= 3x predictions/sec advantage for micro-batched serving, with
``/metrics`` reporting non-zero stage latencies, cache hits, and queue
statistics afterwards.

Self-contained on the toy instance (no corpus cache needed), so it
runs in seconds::

    pytest benchmarks/test_srv01_serving_throughput.py --benchmark-only
"""

from __future__ import annotations

import threading
import time

from repro.core.model import T3Config, T3Model
from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.optimizer import Optimizer
from repro.engine.sqlparser import parse_sql
from repro.errors import SchemaError
from repro.experiments.reporting import print_table
from repro.serving import (
    ModelRegistry,
    PredictionService,
    ServingConfig,
)
from repro.trees.boosting import BoostingParams

from tests.conftest import build_toy_instance

QUERIES = [
    "SELECT count(*) FROM orders WHERE o_total <= 500",
    "SELECT count(*) FROM orders WHERE o_date <= 9000",
    "SELECT count(*) FROM customer WHERE c_balance <= 100",
    "SELECT count(*) FROM item WHERE i_price <= 250",
    "SELECT o_status, count(*) FROM orders, customer "
    "WHERE o_cust = c_id GROUP BY o_status",
    "SELECT count(*) FROM orders, item WHERE o_item = i_id "
    "AND i_price <= 100",
]

N_CLIENTS = 8
BATCHES_PER_CLIENT = 20
CLIENT_BATCH = 24            # queries per predict_many call
SEQUENTIAL_SECONDS = 2.0


def _sequential_rate(instance, model) -> float:
    """Requests/sec of the offline single-request path: every request
    parses, optimizes, featurizes, and predicts (what ``repro-t3
    predict`` does per invocation)."""
    optimizer = Optimizer(instance.schema, instance.catalog)
    cards = ExactCardinalityModel(instance.catalog)
    done = 0
    start = time.perf_counter()
    while time.perf_counter() - start < SEQUENTIAL_SECONDS:
        sql = QUERIES[done % len(QUERIES)]
        logical = parse_sql(sql, instance.schema, instance.catalog)
        plan = optimizer.optimize(logical, f"seq_{done}")
        model.predict_query(plan, cards)
        done += 1
    return done / (time.perf_counter() - start)


def _served_rate(service) -> float:
    """Predictions/sec of N_CLIENTS concurrent threads, each sending
    micro-batches of CLIENT_BATCH queries (the optimizer-style call
    shape: many candidate queries per request). Plans are cached after
    the first round."""
    for sql in QUERIES:  # warm the plan cache
        service.predict(sql, "toy")
    errors = []

    def client(offset: int) -> None:
        for i in range(BATCHES_PER_CLIENT):
            batch = [(QUERIES[(offset + i + j) % len(QUERIES)], "toy")
                     for j in range(CLIENT_BATCH)]
            try:
                service.predict_many(batch, timeout=30.0)
            except Exception as exc:  # noqa: BLE001 - report below
                errors.append(exc)

    threads = [threading.Thread(target=client, args=(t,))
               for t in range(N_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[:3]
    return N_CLIENTS * BATCHES_PER_CLIENT * CLIENT_BATCH / elapsed


def test_serving_throughput(benchmark):
    instance = build_toy_instance()
    workload = WorkloadBuilder(
        instance, WorkloadConfig(queries_per_structure=2,
                                 include_fixed_benchmarks=False)).build()
    model = T3Model.train(workload, T3Config(
        boosting=BoostingParams(n_rounds=30, objective="mape",
                                validation_fraction=0.2),
        compile_to_native=True))

    def resolve(name):
        if name == "toy":
            return instance
        raise SchemaError(name)

    registry = ModelRegistry()
    registry.register(model, "toy-model")
    service = PredictionService(
        registry,
        ServingConfig(batch_wait_s=0.0005, max_batch_rows=512,
                      queue_capacity=2048),
        instance_resolver=resolve)

    sequential = _sequential_rate(instance, model)
    served = _served_rate(service)
    speedup = served / sequential

    metrics = service.metrics_text()
    stats = service.cache_stats()
    batch_rows = service.metrics.get("t3_serving_batch_rows")

    print_table(
        "SRV-1: serving throughput (cached-plan workload)",
        ["path", "req/s", "speedup"],
        [["sequential predict_query", f"{sequential:,.0f}", "1.0x"],
         [f"served ({N_CLIENTS} clients x {CLIENT_BATCH}-query batches)",
          f"{served:,.0f}", f"{speedup:.1f}x"]],
        note=f"cache hits={stats.hits} misses={stats.misses}  "
             f"mean batch={batch_rows.mean():.1f} rows  "
             f"backend={registry.get('toy-model').backend}")

    # Acceptance: >= 3x the sequential predictions/sec.
    assert speedup >= 3.0, (
        f"served {served:,.0f} req/s vs sequential {sequential:,.0f} req/s "
        f"= {speedup:.2f}x, expected >= 3x")

    # Acceptance: /metrics reports non-zero stage latencies, cache hits,
    # and queue stats after the run.
    assert service.metrics.get("t3_serving_parse_seconds").sum > 0
    assert service.metrics.get("t3_serving_featurize_seconds").sum > 0
    assert service.metrics.get("t3_serving_infer_seconds").sum > 0
    assert service.metrics.get("t3_serving_cache_hits_total").value > 0
    assert service.metrics.get("t3_serving_batches_total").value > 0
    assert "t3_serving_queue_depth" in metrics
    assert "t3_serving_queue_capacity 2048" in metrics

    # The steady-state request path, for the pytest-benchmark ledger.
    batch = [(sql, "toy") for sql in QUERIES]
    benchmark(lambda: service.predict_many(batch))

    service.close()
