"""Figure 6 — distribution of observed query running times.

Paper: most queries run ~1 ms; the longest exceed 20 s, the shortest
finish below 2 us, with a spike of very short queries (high selectivity
or optimizer short-circuits).
"""

import numpy as np

from repro.experiments.reporting import print_series


def test_figure6_runtime_histogram(benchmark, ctx):
    workload = ctx.workload()

    def collect():
        return np.array([q.median_time for q in workload])

    times = benchmark(collect)
    edges = 10.0 ** np.arange(-7, 3)  # 100ns .. 100s decade buckets
    counts, _ = np.histogram(times, bins=edges)
    labels = [f"1e{int(np.log10(low))}s..1e{int(np.log10(high))}s"
              for low, high in zip(edges[:-1], edges[1:])]
    print_series(
        "Figure 6: observed running times of queries in the dataset",
        "bucket", {"queries": [int(c) for c in counts]}, labels,
        note=f"min={times.min():.2e}s max={times.max():.2e}s "
             f"median={np.median(times):.2e}s; paper: ~2us .. >20s, "
             "mode around 1ms")

    # Shape: wide dynamic range and a ~millisecond mode.
    assert times.max() / times.min() > 1e4
    mode_bucket = int(np.argmax(counts))
    assert edges[mode_bucket] <= 1e-1  # mode at or below 100ms
