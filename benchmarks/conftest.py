"""Shared setup for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md's per-experiment index). They share one
:class:`~repro.experiments.context.ExperimentContext` whose expensive
artifacts (the 21-instance workload, trained models) are cached under
``<repo>/.cache`` — the first invocation builds them, later ones load.

Run with::

    pytest benchmarks/ --benchmark-only

Scale can be lowered for quick runs::

    REPRO_BENCH_SCALE=smoke pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.context import ExperimentContext, ExperimentScale


def _scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    factory = {
        "smoke": ExperimentScale.smoke,
        "default": ExperimentScale.default,
        "paper": ExperimentScale.paper,
    }.get(name)
    if factory is None:
        raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r}")
    return factory()


@pytest.fixture(autouse=True)
def _show_reproduction_tables(capsys):
    """Benchmarks print the paper-comparison tables; show them live on
    the terminal even though pytest captures test output."""
    from repro.experiments import reporting
    reporting.set_capture_disabler(capsys.disabled)
    yield
    reporting.set_capture_disabler(None)


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(_scale())


@pytest.fixture(scope="session")
def t3(ctx):
    """The standard T3: trained on everything except TPC-DS, compiled."""
    return ctx.t3()


@pytest.fixture(scope="session")
def test_queries(ctx):
    return ctx.test_queries()


@pytest.fixture(scope="session")
def train_queries(ctx):
    return ctx.train_queries()
