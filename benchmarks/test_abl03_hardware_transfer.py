"""Ablation (Sections 2.1 / 6) — transferring T3 to new hardware.

T3 is trained per machine. The paper's transfer recipe: re-run the
benchmark queries on the new hardware (hours) and retrain (seconds).
This ablation simulates a second machine (slower clock, different cache
hierarchy), shows that the machine-A model mispredicts on machine B in
a *systematic* way, and that retraining on machine-B measurements
restores accuracy.
"""

from dataclasses import replace

import numpy as np

from repro.datagen.instances import get_instance
from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
from repro.engine.simulator import CacheHierarchy, SimulatorConfig
from repro.core.model import T3Model
from repro.experiments.reporting import print_table

TRAIN_INSTANCES = ("tpch_sf1", "financial", "airline", "ssb", "walmart")
TEST_INSTANCE = "tpcds_sf1"

#: Machine B: 1.6x slower clock, smaller caches with harsher misses.
MACHINE_B = SimulatorConfig(
    speed_factor=0.625,
    cache=CacheHierarchy(l1_bytes=16 * 1024, l2_bytes=512 * 1024,
                         l3_bytes=8 * 1024 * 1024, l2_penalty=1.9,
                         l3_penalty=3.5, dram_penalty=8.0))


def _workload(ctx, machine_config, names, key):
    def build():
        config = WorkloadConfig(
            queries_per_structure=max(4, ctx.scale.queries_per_structure),
            include_fixed_benchmarks=False, simulator=machine_config,
            seed=ctx.seed)
        queries = []
        for name in names:
            queries.extend(WorkloadBuilder(get_instance(name),
                                           config).build())
        return queries

    return ctx.cache.get_or_build(ctx._key("hw", key), build)


def test_ablation_hardware_transfer(benchmark, ctx):
    machine_a = SimulatorConfig()
    train_a = _workload(ctx, machine_a, TRAIN_INSTANCES, "a-train")
    test_a = _workload(ctx, machine_a, (TEST_INSTANCE,), "a-test")
    train_b = _workload(ctx, MACHINE_B, TRAIN_INSTANCES, "b-train")
    test_b = _workload(ctx, MACHINE_B, (TEST_INSTANCE,), "b-test")

    def build_model(queries, key):
        def payload():
            model = T3Model.train(queries, ctx.t3_config())
            return (model.booster, model.config)
        booster, config = ctx.cache.get_or_build(ctx._key("hw-model", key),
                                                 payload)
        return T3Model(booster, config)

    def run():
        model_a = build_model(train_a, "a")
        model_b = build_model(train_b, "b")
        return {
            "A-model on machine A": model_a.evaluate(test_a),
            "A-model on machine B": model_a.evaluate(test_b),
            "B-model on machine B (retrained)": model_b.evaluate(test_b),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: hardware transfer (machine B = slower clock, smaller caches)",
        ["Setup", "p50", "p90", "avg"],
        [[name, f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}"]
         for name, s in results.items()],
        note="paper: hardware-specific models; transfer = re-benchmark "
             "(hours) + retrain (seconds)")

    native = results["A-model on machine A"]
    transferred = results["A-model on machine B"]
    retrained = results["B-model on machine B (retrained)"]
    assert transferred.p50 > native.p50 * 1.1    # systematic mismatch
    assert retrained.p50 < transferred.p50       # retraining recovers
    assert retrained.p50 < native.p50 * 1.5      # back to the usual regime
