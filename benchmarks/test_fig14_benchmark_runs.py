"""Figure 14 — model accuracy vs number of benchmark repetitions.

Training targets are the medians over the first k of 10 measured runs,
for k = 1, 2, 3, 5, 10. Paper: no clear evidence that repeated
benchmark runs improve the model — a single run suffices, shrinking
training-data collection to minutes.
"""

import numpy as np

from repro.experiments.reporting import print_series

RUN_COUNTS = (1, 2, 3, 5, 10)


def test_figure14_benchmark_repetitions(benchmark, ctx, test_queries):
    def run():
        p50s, means = [], []
        for n_runs in RUN_COUNTS:
            model = ctx.t3_variant(n_runs=n_runs)
            summary = model.evaluate(test_queries)
            p50s.append(summary.p50)
            means.append(summary.mean)
        return p50s, means

    p50s, means = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Figure 14: accuracy by number of benchmark runs used for targets",
        "#runs",
        {"p50": p50s, "avg": means},
        RUN_COUNTS,
        note="paper: no significant benefit from repeated runs")

    # The single-run model must be within a modest factor of the
    # 10-run model (the paper's conclusion: repetitions don't matter).
    assert p50s[0] <= p50s[-1] * 1.3
    assert min(p50s) > 1.0
