"""Figure 1 — the latency/accuracy scatter of recent models.

Paper's points (median q-error vs prediction latency):
  AutoWLM  ~1ms,  q-error ~2.5 (worst accuracy)
  Zero Shot ~50ms, competitive accuracy
  Stage     ~300us average
  T3        ~4us,  competitive accuracy  (bottom-left corner)

Reproduction target: T3 occupies the bottom-left (fastest AND among the
most accurate); AutoWLM is fast-ish but inaccurate; the NN is accurate
on its home workload but slow.
"""

import time

import numpy as np

from repro.core.dataset import cardinality_model_for
from repro.experiments.reporting import format_seconds, print_table


def _latency(fn, repeats=50):
    fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_figure1_scatter(benchmark, ctx, t3, test_queries):
    zeroshot = ctx.zeroshot()
    autowlm = ctx.autowlm()
    query = test_queries[10]
    model = cardinality_model_for(query)
    vectors, _ = t3.registry.vectors_for_plan(query.plan, model)
    vectors = [np.ascontiguousarray(v) for v in vectors]

    def t3_call():
        for vector in vectors:
            t3.predict_raw_one(vector)

    benchmark(t3_call)

    summed = np.ascontiguousarray(np.sum(vectors, axis=0))
    rows = [
        ("T3 (ours)", _latency(t3_call),
         t3.evaluate(test_queries).p50),
        ("AutoWLM [40]", _latency(lambda: autowlm.predict_raw_one(summed)),
         autowlm.evaluate(test_queries).p50),
        ("Zero Shot [16]",
         _latency(lambda: zeroshot.predict_query(query.plan, model),
                  repeats=20),
         zeroshot.evaluate(test_queries).p50),
    ]
    print_table(
        "Figure 1: prediction latency vs median q-error (TPC-DS test)",
        ["Model", "Latency", "p50 q-error"],
        [[name, format_seconds(latency), f"{p50:.2f}"]
         for name, latency, p50 in rows],
        note="T3 must sit bottom-left: fastest and most accurate")

    t3_latency, t3_p50 = rows[0][1], rows[0][2]
    for name, latency, p50 in rows[1:]:
        assert t3_latency < latency, name
        assert t3_p50 <= p50 * 1.1, name
