"""Figure 5 — prediction latency by number of pipelines (1 .. 1000).

Paper: compiled single-threaded latency scales linearly from ~1.5 us to
~700 us at 1000 pipelines; single-threaded interpretation is far slower;
multi-threaded interpretation only catches up for very large queries.
"""

import time

import numpy as np

from repro.core.dataset import build_dataset
from repro.treecomp.interpreter import (
    InterpretedModel,
    MultiThreadedInterpretedModel,
    PythonScalarModel,
)
from repro.experiments.reporting import format_seconds, print_series

PIPELINE_COUNTS = (1, 3, 10, 30, 100, 300, 1000)


def _median_time(fn, repeats):
    fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_figure5_latency_by_pipelines(benchmark, ctx, t3, test_queries):
    dataset = ctx.cache.get_or_build(
        ctx._key("test-dataset-exact"), lambda: build_dataset(test_queries))
    pool = np.ascontiguousarray(dataset.X)
    rng = np.random.default_rng(0)

    scalar = PythonScalarModel(t3.booster)
    multi = MultiThreadedInterpretedModel(t3.booster, n_threads=8)

    compiled_series, interp_series, multi_series = [], [], []
    for count in PIPELINE_COUNTS:
        rows = rng.choice(len(pool), size=count, replace=True)
        batch = np.ascontiguousarray(pool[rows])
        vectors = [np.ascontiguousarray(v) for v in batch]
        repeats = max(3, min(50, 2000 // count))

        def compiled_call():
            for vector in vectors:
                t3.predict_raw_one(vector)

        compiled_series.append(_median_time(compiled_call, repeats))
        interp_series.append(_median_time(
            lambda: scalar.predict(batch), max(2, repeats // 5)))
        multi_series.append(_median_time(
            lambda: multi.predict(batch), max(2, repeats // 5)))

    benchmark(lambda: [t3.predict_raw_one(v)
                       for v in [np.ascontiguousarray(pool[0])] * 3])
    multi.close()

    print_series(
        "Figure 5: prediction latency by number of pipelines",
        "#pipelines",
        {
            "compiled ST": [format_seconds(t) for t in compiled_series],
            "interpreted ST": [format_seconds(t) for t in interp_series],
            "interpreted MT": [format_seconds(t) for t in multi_series],
        },
        PIPELINE_COUNTS,
        note="paper: compiled ~1.5us@1 to ~700us@1000; interpretation "
             "slower, MT only competitive for huge queries")

    # Shape assertions.
    assert compiled_series[0] < 50e-6                 # microsecond regime
    # Roughly linear scaling: 1000 pipelines within ~3x of 1000x the single.
    assert compiled_series[-1] < compiled_series[0] * 1000 * 3
    # Compiled beats interpreted for every realistic query size (<=100).
    for i, count in enumerate(PIPELINE_COUNTS):
        if count <= 100:
            assert compiled_series[i] < interp_series[i]
            assert compiled_series[i] < multi_series[i]
