"""Table 2 — model throughput in queries per second, single vs batch.

Paper's finding: batch evaluation (>1000 data points) is dramatically
faster than back-to-back single evaluation — over 1000x for neural
networks — but many use-cases cannot batch, hence the latency focus.
"""

import time

import numpy as np

from repro.core.dataset import build_dataset
from repro.core.model import PredictionBackend
from repro.experiments.reporting import print_table


def _throughput_single(fn, items, seconds_budget=1.0):
    start = time.perf_counter()
    done = 0
    while time.perf_counter() - start < seconds_budget:
        fn(items[done % len(items)])
        done += 1
    return done / (time.perf_counter() - start)


def test_table2_throughput(benchmark, ctx, t3, test_queries):
    zeroshot = ctx.zeroshot()
    dataset = ctx.cache.get_or_build(
        ctx._key("test-dataset-exact"), lambda: build_dataset(test_queries))
    X = np.ascontiguousarray(dataset.X)
    vectors = [np.ascontiguousarray(v) for v in X[:200]]

    # Batch multiplier: replicate the pipeline matrix to >1000 rows.
    replicated = np.ascontiguousarray(
        np.tile(X, (max(1, 2000 // len(X)) + 1, 1))[:2000])

    rows = []

    # T3 compiled
    single = _throughput_single(t3.predict_raw_one, vectors)
    start = time.perf_counter()
    repeats = 20
    for _ in range(repeats):
        t3.predict_raw_batch(replicated)
    batch = repeats * len(replicated) / (time.perf_counter() - start)
    rows.append(["T3 (compiled)", f"{single:,.0f}", f"{batch:,.0f}"])
    benchmark(lambda: t3.predict_raw_batch(replicated))

    # T3 interpreted (vectorized numpy batch vs scalar single)
    t3.use_backend(PredictionBackend.INTERPRETED)
    try:
        single_i = _throughput_single(t3.predict_raw_one, vectors,
                                      seconds_budget=0.5)
        start = time.perf_counter()
        for _ in range(5):
            t3.booster.predict(replicated)
        batch_i = 5 * len(replicated) / (time.perf_counter() - start)
    finally:
        t3.use_backend(PredictionBackend.COMPILED)
    rows.append(["T3 interpreted", f"{single_i:,.0f}", f"{batch_i:,.0f}"])

    # Zero-Shot NN: single plan-by-plan vs batched node matrices.
    from repro.core.dataset import cardinality_model_for
    sample = test_queries[:50]
    models = [cardinality_model_for(q) for q in sample]

    def nn_single(index):
        query, model = sample[index % len(sample)], models[index % len(models)]
        zeroshot.predict_query(query.plan, model)

    single_nn = _throughput_single(nn_single, list(range(len(sample))),
                                   seconds_budget=0.5)
    batch_nn = single_nn * _nn_batch_speedup(zeroshot, sample, models)
    rows.append(["Zero Shot NN", f"{single_nn:,.0f}", f"{batch_nn:,.0f}"])

    print_table("Table 2: throughput (queries/second)",
                ["Model", "Single", "Batch"], rows,
                note="paper: batching helps every model; NN gains most")
    assert batch > single


def _nn_batch_speedup(zeroshot, sample, models):
    """Measured speedup of evaluating all plans' node matrices at once."""
    import numpy as np
    from repro.baselines.zeroshot import encode_plan

    matrices = [(encode_plan(q.plan, m) - zeroshot._x_mean)
                / zeroshot._x_std for q, m in zip(sample, models)]
    start = time.perf_counter()
    for matrix in matrices:
        zeroshot._forward_single(matrix)
    sequential = time.perf_counter() - start

    nodes = np.concatenate(matrices)
    counts = np.array([len(m) for m in matrices])
    segments = np.repeat(np.arange(len(matrices)), counts)
    start = time.perf_counter()
    hidden = zeroshot.node_mlp.forward(nodes, remember=False)
    pooled = np.zeros((len(matrices), hidden.shape[1]))
    np.add.at(pooled, segments, hidden)
    pooled /= counts[:, None]
    head_in = np.concatenate([pooled, np.log1p(counts)[:, None]], axis=1)
    zeroshot.head_mlp.forward(head_in, remember=False)
    batched = time.perf_counter() - start
    return max(1.0, sequential / batched)
