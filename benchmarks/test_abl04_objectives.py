"""Ablation (Section 2.5) — training objective: MAPE vs L2 vs L1.

The paper trains with LightGBM's MAPE objective and notes that after
the ``-log`` target transformation "all loss functions provided by
LightGBM yield better accuracy". This ablation trains the same model
under three objectives on the transformed targets.
"""

import numpy as np

from repro.metrics import summarize_predictions
from repro.trees.boosting import BoostingParams, train_boosted_trees
from repro.core.dataset import build_dataset
from repro.core.targets import inverse_transform
from repro.experiments.reporting import print_table

OBJECTIVES = ("mape", "l2", "l1")


def test_ablation_objectives(benchmark, ctx, train_queries, test_queries):
    train = ctx.cache.get_or_build(
        ctx._key("train-dataset-exact"), lambda: build_dataset(train_queries))
    test = ctx.cache.get_or_build(
        ctx._key("test-dataset-exact"), lambda: build_dataset(test_queries))
    cards = np.maximum(test.input_cards, 1.0)

    def run():
        results = {}
        for objective in OBJECTIVES:
            def payload(obj=objective):
                params = BoostingParams(
                    n_rounds=ctx.scale.boosting_rounds, objective=obj,
                    validation_fraction=0.2, seed=ctx.seed)
                return train_boosted_trees(train.X, train.y, params)
            booster = ctx.cache.get_or_build(
                ctx._key("objective", objective), payload)
            predicted = inverse_transform(booster.predict(test.X)) * cards
            totals = np.zeros(test.n_queries)
            np.add.at(totals, test.query_index, predicted)
            results[objective] = summarize_predictions(
                totals, test.query_times())
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: training objective on transformed targets (TPC-DS test)",
        ["Objective", "p50", "p90", "avg"],
        [[name, f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}"]
         for name, s in results.items()],
        note="paper: MAPE used; all objectives work well after -log "
             "transformation")

    # All objectives land in the same accuracy regime (within 2x p50).
    p50s = [s.p50 for s in results.values()]
    assert max(p50s) < 2.0 * min(p50s)
    assert results["mape"].p50 < 2.5
