"""Table 3 — deviation of repeated benchmark runs, as q-error.

For each query: of 10 measured runs, keep the most consistent 2/3 and
report the one furthest from the median. Paper: p50 ≈ 1.029,
90 % of queries deviate by less than 13 %, average ≈ 1.058.
"""

import numpy as np

from repro.metrics import consistent_run_deviation, summarize_q_errors
from repro.experiments.reporting import print_table


def test_table3_benchmark_deviations(benchmark, ctx):
    workload = ctx.workload()

    def compute():
        return [consistent_run_deviation(q.execution.run_times)
                for q in workload]

    deviations = benchmark(compute)
    summary = summarize_q_errors(deviations)
    print_table(
        "Table 3: run-to-run deviation of benchmarks (q-error)",
        ["Statistic", "Reproduced", "Paper"],
        [
            ["p50", f"{summary.p50:.3f}", "~1.03"],
            ["p90", f"{summary.p90:.3f}", "~1.13"],
            ["mean", f"{summary.mean:.3f}", "~1.058"],
            ["queries", str(summary.count), "~14000"],
        ],
        note="this is the noise floor no prediction model can beat")
    # The calibrated simulator noise should land near the paper's values.
    assert 1.0 < summary.p50 < 1.10
    assert summary.p90 < 1.30
