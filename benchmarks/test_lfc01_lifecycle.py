"""Lifecycle chaos drill — observe → retrain → canary → promote/rollback.

Beyond-paper experiment for the online model lifecycle (ISSUE 10): a
drift scenario shifts the ground truth under a live service while a
chaos plan tears observation-log appends, and the lifecycle has to
(a) promote a retrained candidate through shadow + canary without a
single failed client request attributable to the swap, and (b) when
the ground truth reverts mid-canary, detect the regression and roll
back within the canary window. The promote swap is an atomic registry
pointer write, so its measured latency must be microseconds, not a
service pause.

Numbers land in ``BENCH_lifecycle.json`` at the repo root so CI can
track swap latency and rollback time-to-detect on every PR::

    pytest benchmarks/test_lfc01_lifecycle.py --benchmark-only

Self-contained on the toy instance (no corpus cache needed).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.core.model import T3Config, T3Model
from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
from repro.errors import InjectedFaultError
from repro.experiments.reporting import print_table
from repro.faults import FaultPlan, FaultSpec, clear_faults, install_plan
from repro.lifecycle import (
    DriftScenario,
    LifecycleConfig,
    LifecycleManager,
    LifecyclePhase,
    ObservationLog,
    RetrainConfig,
)
from repro.serving import ModelRegistry, PredictionService, ServingConfig
from repro.trees.boosting import BoostingParams

from tests.conftest import build_toy_instance

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_lifecycle.json"

#: Promote is one registry pointer write; anything slower means the
#: swap is doing work on the serving path.
MAX_SWAP_SECONDS = 0.010
#: A regressed canary must be caught within the canary window.
MAX_OBSERVATION_ROUNDS = 400

SEED = 7
CHAOS = "lifecycle.log_append:raise:0.15"


def _build(instance, model, log_dir, seed=SEED):
    scenario = DriftScenario(instance, speed_factor=4.0, seed=seed)
    registry = ModelRegistry(compile_native=False)
    registry.register(model, "default")
    service = PredictionService(
        registry, ServingConfig(plan_cache_size=64, compile_native=False),
        instance_resolver=scenario.resolver)
    config = LifecycleConfig(
        retrain_after=30, shadow_samples=12, canary_samples=12,
        canary_fraction=0.2, min_canary_detect=4,
        retrain=RetrainConfig(rounds=12, min_records=16), seed=seed)
    manager = LifecycleManager(service, ObservationLog(log_dir), config)
    return scenario, service, manager


def _drive_until(scenario, service, manager, stop, cap, counters):
    """Feed observations until ``stop(manager)`` or ``cap`` rounds."""
    rounds = 0
    while rounds < cap and not stop(manager):
        rounds += 1
        sql = scenario.next_request()
        truth = scenario.observe(sql)
        try:
            service.observe(sql, scenario.base.name, truth)
            counters["observations"] += 1
        except InjectedFaultError:
            counters["append_faults"] += 1
    return rounds


def test_lifecycle_chaos_drill(tmp_path, benchmark):
    instance = build_toy_instance()
    workload = WorkloadBuilder(
        instance, WorkloadConfig(queries_per_structure=3,
                                 include_fixed_benchmarks=False)).build()
    model = T3Model.train(workload, T3Config(
        boosting=BoostingParams(n_rounds=20, objective="mape",
                                validation_fraction=0.2),
        compile_to_native=False))

    install_plan(FaultPlan.parse(CHAOS, seed=SEED))
    counters = {"observations": 0, "append_faults": 0}
    # Client traffic runs through every act; a hot swap that fails even
    # one of these requests fails the drill.
    client_stats = {"requests": 0, "failures": 0}

    def with_client_traffic(scenario, service, act) -> None:
        stop = threading.Event()

        def client() -> None:
            i = 0
            while not stop.is_set():
                try:
                    service.predict(scenario.request(i), "toy",
                                    timeout=30.0)
                    client_stats["requests"] += 1
                except Exception:   # noqa: BLE001 - counted, asserted below
                    client_stats["failures"] += 1
                i += 1

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        try:
            act()
        finally:
            stop.set()
            thread.join(timeout=30)

    # -- act one: drift → retrain → shadow → canary → promote ----------
    scenario, service, manager = _build(instance, model,
                                        tmp_path / "promote")
    try:
        scenario.shift()
        promote_start = time.perf_counter()
        with_client_traffic(scenario, service, lambda: _drive_until(
            scenario, service, manager,
            stop=lambda m: m.active_entry.version == 2,
            cap=MAX_OBSERVATION_ROUNDS, counters=counters))
        promote_wall = time.perf_counter() - promote_start
        assert manager.active_entry.version == 2, manager.transitions
        swap_seconds = manager.last_swap_seconds
        assert swap_seconds is not None and swap_seconds < MAX_SWAP_SECONDS
        promote_transitions = list(manager.transitions)
        promote_stats = manager.log.stats()
        assert promote_stats["torn_tails_quarantined"] == 0
    finally:
        manager.log.close()

    # -- act two: the canary regresses → rollback ----------------------
    # A fresh stack: the active model knows the *base* regime, the
    # candidate retrains on the shifted one — then the ground truth
    # reverts mid-canary, making the canary the wrong model while the
    # pinned active model is right again. Exactly the deployment the
    # rollback path exists for.
    scenario, service, manager = _build(instance, model,
                                        tmp_path / "rollback")
    try:
        scenario.shift()
        _drive_until(
            scenario, service, manager,
            stop=lambda m: m.phase is LifecyclePhase.CANARY,
            cap=MAX_OBSERVATION_ROUNDS, counters=counters)
        assert manager.phase is LifecyclePhase.CANARY, manager.transitions
        scenario.reset()        # ground truth reverts under the canary
        detect_start = time.perf_counter()
        with_client_traffic(scenario, service, lambda: _drive_until(
            scenario, service, manager,
            stop=lambda m: m.phase is not LifecyclePhase.CANARY,
            cap=manager.config.canary_samples + 1, counters=counters))
        detect_wall = time.perf_counter() - detect_start
        rollback = [t for t in manager.transitions
                    if t["to"] == "observing"
                    and "regressed" in t["reason"]]
        assert rollback, manager.transitions
        assert manager.active_entry.version == 1       # pointer held
        assert service.registry.canary_info("default") is None
        detect_samples = manager.last_detect_samples
        assert detect_samples is not None
        assert detect_samples <= manager.config.canary_samples
        rollback_transitions = list(manager.transitions)
        rollback_stats = manager.log.stats()
        assert rollback_stats["torn_tails_quarantined"] == 0
    finally:
        clear_faults()

    # -- acceptance ----------------------------------------------------
    assert client_stats["requests"] > 0
    assert client_stats["failures"] == 0, (
        f"{client_stats['failures']} client requests failed during "
        f"lifecycle swaps")
    assert counters["append_faults"] > 0   # chaos actually fired
    assert promote_stats["records"] + rollback_stats["records"] == \
        counters["observations"]

    record = {
        "benchmark": "LFC-1 lifecycle chaos drill",
        "chaos_plan": CHAOS,
        "swap_seconds": swap_seconds,
        "promote_wall_seconds": round(promote_wall, 3),
        "rollback_detect_samples": detect_samples,
        "rollback_detect_wall_seconds": round(detect_wall, 3),
        "observations": counters["observations"],
        "append_faults_injected": counters["append_faults"],
        "client_requests": client_stats["requests"],
        "client_failures": client_stats["failures"],
        "log": {"promote": promote_stats, "rollback": rollback_stats},
        "transitions": {"promote": promote_transitions,
                        "rollback": rollback_transitions},
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_table(
        "LFC-1: lifecycle chaos drill (drift + torn-append faults)",
        ["event", "value"],
        [["promote swap latency", f"{swap_seconds * 1e6:,.0f} us"],
         ["promote wall clock", f"{promote_wall:.1f} s"],
         ["rollback time-to-detect",
          f"{detect_samples} observations / {detect_wall:.2f} s"],
         ["append faults injected", str(counters["append_faults"])],
         ["client requests (0 failed)", str(client_stats["requests"])]],
        note=f"recorded in {RESULT_PATH.name}")

    # The steady-state observation hook, for the pytest-benchmark ledger.
    sql = scenario.request(0)
    truth = scenario.observe(sql)
    benchmark(lambda: service.observe(sql, "toy", truth))

    manager.log.close()
    service.close()
