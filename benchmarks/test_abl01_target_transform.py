"""Ablation (Section 2.4) — the ``t' = -log(t)`` target transformation.

The paper: "We observed significantly improved accuracy predicting for
these transformed targets. After this transformation, all loss
functions provided by LightGBM yield better accuracy." This ablation
trains two otherwise-identical models — one on transformed per-tuple
targets, one on raw per-tuple seconds — and compares query-level
q-errors.
"""

import numpy as np

from repro.metrics import summarize_predictions
from repro.trees.boosting import BoostingParams, train_boosted_trees
from repro.core.dataset import build_dataset
from repro.core.targets import inverse_transform, tuple_time_target
from repro.experiments.reporting import print_table


def _query_errors(pipeline_times, dataset):
    totals = np.zeros(dataset.n_queries)
    np.add.at(totals, dataset.query_index,
              np.maximum(pipeline_times, 0.0))
    return summarize_predictions(totals, dataset.query_times())


def test_ablation_target_transform(benchmark, ctx, train_queries,
                                   test_queries):
    train = ctx.cache.get_or_build(
        ctx._key("train-dataset-exact"), lambda: build_dataset(train_queries))
    test = ctx.cache.get_or_build(
        ctx._key("test-dataset-exact"), lambda: build_dataset(test_queries))
    params = BoostingParams(n_rounds=ctx.scale.boosting_rounds,
                            objective="l2", validation_fraction=0.2,
                            seed=ctx.seed)
    cards = np.maximum(test.input_cards, 1.0)

    def run():
        # Variant 1: the paper's transformed targets.
        transformed = train_boosted_trees(train.X, train.y, params)
        predicted_transformed = (
            inverse_transform(transformed.predict(test.X)) * cards)
        # Variant 2: raw per-tuple seconds as targets.
        raw_targets = tuple_time_target(train.pipeline_times,
                                        train.input_cards)
        raw = train_boosted_trees(train.X, raw_targets, params)
        predicted_raw = raw.predict(test.X) * cards
        return (_query_errors(predicted_transformed, test),
                _query_errors(predicted_raw, test))

    with_transform, without_transform = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print_table(
        "Ablation: -log target transformation (L2 objective, TPC-DS test)",
        ["Targets", "p50", "p90", "avg"],
        [
            ["-log(t) transformed", f"{with_transform.p50:.2f}",
             f"{with_transform.p90:.2f}", f"{with_transform.mean:.2f}"],
            ["raw seconds/tuple", f"{without_transform.p50:.2f}",
             f"{without_transform.p90:.2f}", f"{without_transform.mean:.2f}"],
        ],
        note="paper: transformation significantly improves accuracy "
             "(targets span 1e-15s..1s)")

    assert with_transform.p50 < without_transform.p50
    assert with_transform.mean < without_transform.mean
