"""Figure 7 — frequency distribution of q-errors on the TPC-DS test set.

Paper: the bulk of queries predicted with small q-error (<1.5), plus
few but heavy outliers — which is why the average far exceeds the p50.
"""

import numpy as np

from repro.metrics import q_errors
from repro.core.dataset import build_dataset
from repro.experiments.reporting import print_series


def test_figure7_qerror_histogram(benchmark, ctx, t3, test_queries):
    dataset = ctx.cache.get_or_build(
        ctx._key("test-dataset-exact"), lambda: build_dataset(test_queries))

    def predict():
        return t3.predict_dataset(dataset)

    predicted = benchmark(predict)
    errors = q_errors(predicted, dataset.query_times())

    edges = [1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, np.inf]
    counts, _ = np.histogram(errors, bins=edges)
    labels = [f"[{low:g},{high:g})" for low, high in zip(edges[:-1],
                                                         edges[1:])]
    print_series(
        "Figure 7: q-error frequency on all TPC-DS test queries",
        "q-error bucket", {"queries": [int(c) for c in counts]}, labels,
        note="paper: majority below 1.5 with few heavy outliers")

    below_1_5 = counts[:3].sum() / counts.sum()
    assert below_1_5 > 0.5          # majority of queries well predicted
    assert np.mean(errors) > np.median(errors)  # heavy-tailed, like Fig 7
