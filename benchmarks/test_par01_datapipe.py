"""PAR-1: parallel offline data pipeline — serial vs process-pool build.

Beyond-paper experiment for the offline side of T3's "minutes not
hours" claim (ISSUE 4): the 21-instance workload build
(generate -> optimize -> simulate) fans out over a process pool, and
featurization writes matrix-direct. The acceptance bar is a >= 2.5x
workload-build speedup with ``jobs=4`` on a >= 4-core machine — and,
always, bit-identical datasets (feature matrix, targets, query
ordering) between the serial and parallel builds.

Numbers land in ``BENCH_datapipe.json`` at the repo root so CI can
track the speedup on every PR::

    REPRO_BENCH_SCALE=smoke pytest benchmarks/test_par01_datapipe.py --benchmark-only
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.dataset import build_dataset
from repro.core.model import T3Model
from repro.datagen.instances import all_instance_names
from repro.datagen.workload import build_corpus_workload
from repro.experiments.reporting import format_seconds, print_table
from repro.parallel import build_corpus_workload_parallel, resolve_jobs

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_datapipe.json"

#: Speedup bar from ISSUE 4, enforced when the machine can express it.
MIN_SPEEDUP = 2.5
BAR_JOBS = 4


def test_parallel_datapipe(ctx, benchmark):
    names = all_instance_names()
    config = ctx.workload_config()
    jobs = resolve_jobs(ctx.jobs)

    start = time.perf_counter()
    serial_queries = build_corpus_workload(names, config)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_queries = build_corpus_workload_parallel(names, config,
                                                      jobs=jobs)
    parallel_seconds = time.perf_counter() - start
    build_speedup = serial_seconds / parallel_seconds

    # Determinism: the parallel build must be bit-identical to the
    # serial one — same queries in the same order, and identical
    # feature matrices and targets after featurization.
    assert [q.name for q in serial_queries] == \
        [q.name for q in parallel_queries]
    serial_ds = build_dataset(serial_queries, seed=ctx.seed)
    parallel_ds = build_dataset(parallel_queries, seed=ctx.seed)
    assert np.array_equal(serial_ds.X, parallel_ds.X)
    assert np.array_equal(serial_ds.y, parallel_ds.y)
    assert np.array_equal(serial_ds.input_cards, parallel_ds.input_cards)
    assert np.array_equal(serial_ds.query_index, parallel_ds.query_index)

    start = time.perf_counter()
    model = T3Model.from_dataset(serial_ds, ctx.t3_config())
    train_seconds = time.perf_counter() - start
    model.close()

    cores = os.cpu_count() or 1
    record = {
        "scale": ctx.scale.name,
        "queries_per_structure": config.queries_per_structure,
        "n_queries": len(serial_queries),
        "n_pipeline_rows": serial_ds.n_rows,
        "jobs": jobs,
        "cpu_count": cores,
        "serial_build_seconds": round(serial_seconds, 3),
        "parallel_build_seconds": round(parallel_seconds, 3),
        "build_speedup": round(build_speedup, 3),
        "train_seconds": round(train_seconds, 3),
        "datasets_bit_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_table(
        "PAR-1: offline data pipeline (workload build + train)",
        ["stage", "time", "speedup"],
        [["serial build", format_seconds(serial_seconds), "1.0x"],
         [f"parallel build (jobs={jobs})", format_seconds(parallel_seconds),
          f"{build_speedup:.2f}x"],
         [f"train ({ctx.scale.boosting_rounds} rounds, "
          f"{serial_ds.n_rows} rows)", format_seconds(train_seconds), "-"]],
        note=f"{len(serial_queries)} queries, {cores} cores; "
             f"datasets bit-identical; recorded in {RESULT_PATH.name}")

    # Acceptance (ISSUE 4): >= 2.5x with jobs=4 on a 4-core runner. A
    # pool cannot beat the serial loop on fewer cores, so the bar only
    # applies where the hardware can express it.
    if jobs >= BAR_JOBS and cores >= BAR_JOBS:
        assert build_speedup >= MIN_SPEEDUP, (
            f"parallel build {parallel_seconds:.2f}s vs serial "
            f"{serial_seconds:.2f}s = {build_speedup:.2f}x, "
            f"expected >= {MIN_SPEEDUP}x with jobs={jobs}")

    # Steady-state featurization throughput for the ledger: one full
    # matrix-direct featurization pass over the held-out family.
    test_queries = [q for q in serial_queries if q.family == "tpcds"]
    benchmark(lambda: build_dataset(test_queries, seed=ctx.seed))
