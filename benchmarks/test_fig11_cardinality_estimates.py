"""Figure 11 — accuracy with perfect vs estimated cardinalities.

Three variants on the TPC-DS test queries:
  1. trained on perfect, evaluated on perfect cardinalities,
  2. trained on perfect, evaluated on estimated cardinalities,
  3. trained on estimated, evaluated on estimated cardinalities.

Paper: the median degrades moderately under estimates; p90 and average
blow up (large estimation errors become large prediction errors);
training on estimates partially compensates at the median.
"""

from repro.core.dataset import CardinalityKind
from repro.experiments.reporting import print_table


def test_figure11_cardinality_regimes(benchmark, ctx, t3, test_queries):
    estimated_model = ctx.t3_variant(
        cardinalities=CardinalityKind.ESTIMATED)

    def evaluate():
        return {
            "train perfect / eval perfect":
                t3.evaluate(test_queries, kind=CardinalityKind.EXACT),
            "train perfect / eval estimated":
                t3.evaluate(test_queries, kind=CardinalityKind.ESTIMATED),
            "train estimated / eval estimated":
                estimated_model.evaluate(test_queries,
                                         kind=CardinalityKind.ESTIMATED),
        }

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Figure 11: accuracy under perfect vs estimated cardinalities",
        ["Variant", "p50", "p90", "avg", "n"],
        [[name, f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}", s.count]
         for name, s in results.items()],
        note="paper: estimates hurt mostly in the tail (p90/avg); "
             "training on estimates helps the median")

    perfect = results["train perfect / eval perfect"]
    mismatched = results["train perfect / eval estimated"]
    retrained = results["train estimated / eval estimated"]
    assert mismatched.p90 >= perfect.p90       # tail degrades
    assert mismatched.mean >= perfect.mean
    # Training on estimates compensates at the median (within noise).
    assert retrained.p50 <= mismatched.p50 * 1.15
