"""Figure 10 — accuracy comparison: T3 vs the Zero-Shot model on JOB.

Paper's protocol: both models trained on other database instances (no
IMDB data), exact cardinalities, evaluated on the 113 JOB queries; Zero
Shot is trained on its *complex workload* pattern. Finding: T3's p50
approximately equals Zero Shot's; p90 and average are better for T3.
"""

from repro.experiments.reporting import print_table


def test_figure10_t3_vs_zeroshot_on_job(benchmark, ctx):
    t3 = ctx.t3_variant(exclude_family="imdb")
    zeroshot = ctx.zeroshot(train_on="complex")
    job = ctx.job_benchmark_queries()

    def evaluate():
        return {
            "T3": t3.evaluate(job),
            "Zero Shot": zeroshot.evaluate(job),
        }

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_table(
        "Figure 10: T3 vs Zero Shot on the Join Order Benchmark",
        ["Model", "p50", "p90", "avg", "n"],
        [[name, f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}", s.count]
         for name, s in results.items()],
        note="paper: p50 approximately equal; T3 better at p90 and avg")

    t3_summary = results["T3"]
    zs_summary = results["Zero Shot"]
    assert t3_summary.p50 <= zs_summary.p50 * 1.25   # p50 comparable
    assert t3_summary.p90 <= zs_summary.p90          # T3 better in the tail
    assert t3_summary.mean <= zs_summary.mean
