"""Table 5 — DPsize join-ordering speed with C_out vs T3 as cost model.

Paper (113 JOB queries, cardinality oracle):
  C_out : 8.5 ms   total, 158,320 model calls, 0.054 us/call
  T3    : 525.4 ms total, 316,640 model calls, 1.659 us/call (~60x slower)

Reproduction target: T3 makes ~2x the model calls (each DP combination
touches two pipelines) and is substantially slower per call; the exact
ratio differs because our C_out runs in Python rather than C++.
"""

from repro.datagen.benchmarks_job import job_queries
from repro.datagen.instances import get_instance
from repro.joinorder import CoutJoinCost, JoinGraph, T3JoinCost, dpsize
from repro.experiments.reporting import print_table


def test_table5_optimization_speed(benchmark, ctx, t3):
    instance = get_instance("imdb")
    graphs = [JoinGraph.from_logical(logical, instance.catalog)
              for _, logical in job_queries(instance)]

    def run(cost_model_factory):
        total_seconds = 0.0
        total_calls = 0
        for graph in graphs:
            cost_model = cost_model_factory()
            result = dpsize(graph, cost_model)
            total_seconds += result.optimization_seconds
            total_calls += result.model_calls
        return total_seconds, total_calls

    cout_seconds, cout_calls = benchmark.pedantic(
        lambda: run(CoutJoinCost), rounds=1, iterations=1)
    t3_seconds, t3_calls = run(
        lambda: T3JoinCost(t3.predict_raw_one, t3.registry,
                           instance.catalog))

    print_table(
        "Table 5: join ordering with DPsize (all 113 JOB queries)",
        ["Cost Model", "Opt. Time", "Model Calls", "Time/Call"],
        [
            ["Cout", f"{cout_seconds * 1e3:.1f}ms", f"{cout_calls:,}",
             f"{cout_seconds / cout_calls * 1e6:.3f}us"],
            ["T3", f"{t3_seconds * 1e3:.1f}ms", f"{t3_calls:,}",
             f"{t3_seconds / t3_calls * 1e6:.3f}us"],
        ],
        note="paper: 8.5ms/158k calls vs 525.4ms/317k calls (2x calls, "
             "~60x time)")

    assert t3_calls >= 2 * cout_calls          # two pipelines per combination
    assert t3_calls <= 2 * cout_calls + sum(g.n_relations for g in graphs)
    assert t3_seconds > cout_seconds           # T3 is the slower cost model
