"""Figure 8 — q-errors by query-type group on the TPC-DS test set.

Paper's groups: the fixed benchmark queries (Fixed) plus the generated
structure groups (Se, A, SiA, J, CSe, W, and combinations). Finding:
selection+join+aggregation combinations predict well; the Fixed
benchmark queries are hardest.
"""

import numpy as np

from repro.experiments.reporting import print_table


def test_figure8_by_query_type(benchmark, ctx, t3, test_queries):
    groups = {}
    for query in test_queries:
        groups.setdefault(query.group, []).append(query)

    def evaluate_groups():
        return {name: t3.evaluate(queries)
                for name, queries in sorted(groups.items())}

    results = benchmark.pedantic(evaluate_groups, rounds=1, iterations=1)
    print_table(
        "Figure 8: q-error by query type (TPC-DS test)",
        ["Group", "p50", "p90", "avg", "n"],
        [[name, f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}", s.count]
         for name, s in results.items()],
        note="paper: Fixed (benchmark) queries hardest; "
             "Se/J/A combinations predicted well")

    assert "Fixed" in results
    generated_means = [s.mean for name, s in results.items()
                       if name != "Fixed"]
    # The fixed suite should be among the harder groups (above the
    # median generated-group error).
    assert results["Fixed"].mean >= float(np.median(generated_means)) * 0.8
