"""Figure 9 — leave-one-instance-out accuracy across the corpus.

For every database family, T3 is trained on all *other* families and
evaluated on the left-out one. Paper: the median q-error is robust
across instances; p90 and average vary more.
"""

import numpy as np

from repro.experiments.reporting import print_table

#: Families evaluated (every corpus family; scale variants grouped).
def test_figure9_leave_one_out(benchmark, ctx):
    families = ctx.families()

    def run_all():
        results = {}
        for family in families:
            model = ctx.t3_variant(exclude_family=family)
            held_out = ctx.queries_of_family(family)
            results[family] = model.evaluate(held_out)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Figure 9: leave-one-instance-out q-errors",
        ["Evaluation DB", "p50", "p90", "avg", "n"],
        [[family, f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}", s.count]
         for family, s in results.items()],
        note="paper: p50 robust across instances; p90/avg vary more")

    p50s = np.array([s.p50 for s in results.values()])
    p90s = np.array([s.p90 for s in results.values()])
    # Robust generalization: every family's median q-error is moderate.
    assert np.median(p50s) < 2.0
    # p50 varies less across instances than p90 (the paper's finding).
    assert p50s.std() <= p90s.std() + 1e-9
