"""Table 1 — single-query prediction latency of different models.

Paper's rows: Zero Shot 50 ms (NN); Stage ~300 us average (cache 2 us /
DT 1 ms / NN 30 ms); T3 interpreted 22 us; T3 compiled 4 us.

Our absolute numbers differ (Python harness, numpy NN vs PyTorch), but
the ordering and the orders-of-magnitude gaps are the reproduction
target: compiled T3 ≪ interpreted T3 ≪ Stage average ≪ NN.
"""

import time

import numpy as np

from repro.core.dataset import build_dataset, cardinality_model_for
from repro.core.model import PredictionBackend
from repro.baselines.stage import StageConfig, StageModel
from repro.experiments.reporting import format_seconds, print_table


def _median_latency(fn, repeats=200):
    times = []
    fn()  # warm-up
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_table1_model_latencies(benchmark, ctx, t3, test_queries):
    zeroshot = ctx.zeroshot()
    stage = StageModel(ctx.autowlm(), zeroshot, StageConfig())
    # Populate the cache tier with one third of the evaluation queries,
    # mirroring Stage's repeated-workload setting.
    for query in test_queries[::3]:
        stage.observe(query.plan, query.median_time)

    sample = test_queries[:40]
    models = [cardinality_model_for(q) for q in sample]
    vectors = [t3.registry.vectors_for_plan(q.plan, m)[0]
               for q, m in zip(sample, models)]

    # -- model-only evaluation latency (pre-featurized vectors) --------
    def compiled_call():
        for vecs in vectors[:1]:
            for v in vecs:
                t3.predict_raw_one(v)

    benchmark(compiled_call)  # pytest-benchmark row

    compiled_latency = _median_latency(compiled_call)
    t3.use_backend(PredictionBackend.INTERPRETED)
    try:
        interpreted_latency = _median_latency(compiled_call, repeats=30)
    finally:
        t3.use_backend(PredictionBackend.COMPILED)

    def nn_call():
        zeroshot.predict_query(sample[0].plan, models[0])

    nn_latency = _median_latency(nn_call, repeats=30)

    stage_latencies = []
    tier_latencies = {"cache": [], "tree": [], "nn": []}
    for query, model in zip(sample, models):
        start = time.perf_counter()
        _, tier = stage.predict_query(query.plan, model)
        elapsed = time.perf_counter() - start
        stage_latencies.append(elapsed)
        tier_latencies[tier].append(elapsed)
    stage_average = float(np.mean(stage_latencies))
    tiers = {name: len(values) for name, values in tier_latencies.items()}

    print_table(
        "Table 1: single-query prediction latency",
        ["Model", "Cache", "DT", "NN", "Avg"],
        [
            ["Zero Shot [16]", "-", "-", format_seconds(nn_latency),
             format_seconds(nn_latency)],
            ["Stage [50]", f"tiers={tiers}", "", "",
             format_seconds(stage_average)],
            ["T3 interpreted", "-", format_seconds(interpreted_latency),
             "-", format_seconds(interpreted_latency)],
            ["T3 (ours)", "-", format_seconds(compiled_latency), "-",
             format_seconds(compiled_latency)],
        ],
        note="paper: 50ms / ~300us / 22us / 4us — ordering must match")

    assert compiled_latency < interpreted_latency
    assert compiled_latency < nn_latency
    assert compiled_latency < stage_average
    # Stage's structural claim: the hierarchy's average beats always
    # paying its most expensive tier, and cache hits are the cheapest
    # tier. (Absolute DT-vs-NN order differs from the paper: its NN is
    # a large GNN in PyTorch, ours a small numpy network — see
    # EXPERIMENTS.md.)
    slowest_tier = max(float(np.mean(values))
                       for values in tier_latencies.values() if values)
    assert stage_average <= slowest_tier
    if tier_latencies["cache"]:
        assert float(np.median(tier_latencies["cache"])) == min(
            float(np.median(values))
            for values in tier_latencies.values() if values)
