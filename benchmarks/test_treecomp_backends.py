"""Codegen backend matrix — fig05/tab01/tab02 across every strategy.

Re-runs the paper's latency/throughput shapes (Figure 5 scaling,
Table 1 single-row latency, Table 2 single-vs-batch throughput) across
the full backend matrix: ``nested_if`` / ``flat_array`` /
``flat_array_f32`` compiled strategies plus the vectorized interpreter.

The headline gate is the batch-native contract of codegen v2: at batch
256, one ``predict_batch`` FFI call must beat 256 back-to-back
``predict_one`` calls by at least 5x in rows/second. Accuracy rides
along: the float64 strategies must be bit-identical to the interpreter
(zero q-error delta), and ``flat_array_f32`` within the documented
float32-threshold tolerance.

Numbers land in ``BENCH_treecomp.json`` at the repo root so CI can
track the matrix on every PR::

    REPRO_BENCH_SCALE=smoke pytest benchmarks/test_treecomp_backends.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.dataset import build_dataset
from repro.experiments.reporting import format_seconds, print_table
from repro.treecomp import (
    STRATEGIES,
    InterpretedModel,
    compile_model,
    find_c_compiler,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_treecomp.json"

#: The codegen-v2 acceptance bar: one batch-256 FFI call must deliver
#: at least 5x the rows/second of 256 single-row calls.
MIN_BATCH_SPEEDUP = 5.0
GATE_BATCH_ROWS = 256

#: Documented flat_array_f32 accuracy envelope (relative to the
#: prediction scale): truncating thresholds to float32 can re-route
#: only inputs within half a float32 ulp of a split point.
F32_RTOL = 1e-5

PIPELINE_COUNTS = (1, 10, 100, 1000)

pytestmark = pytest.mark.skipif(find_c_compiler() is None,
                                reason="no C compiler available")


def _median_time(fn, repeats):
    fn()  # warm-up
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def _rows_per_second(fn, n_rows, seconds_budget=0.4):
    fn()  # warm-up
    start = time.perf_counter()
    calls = 0
    while time.perf_counter() - start < seconds_budget:
        fn()
        calls += 1
    return calls * n_rows / (time.perf_counter() - start)


def test_backend_matrix(benchmark, ctx, t3, test_queries):
    dataset = ctx.cache.get_or_build(
        ctx._key("test-dataset-exact"), lambda: build_dataset(test_queries))
    pool = np.ascontiguousarray(dataset.X)
    rng = np.random.default_rng(0)
    gate_rows = np.ascontiguousarray(
        pool[rng.choice(len(pool), size=GATE_BATCH_ROWS, replace=True)])
    gate_vectors = [np.ascontiguousarray(v) for v in gate_rows]

    interpreter = InterpretedModel(t3.booster)
    reference = interpreter.predict(pool)
    backends = {"interpreted": interpreter}
    compiled = {name: compile_model(t3.booster, strategy=name)
                for name in sorted(STRATEGIES)}
    backends.update(compiled)

    record = {"scale": ctx.scale.name, "n_trees": t3.booster.n_trees,
              "n_features": t3.booster.n_features,
              "gate_batch_rows": GATE_BATCH_ROWS, "backends": {}}
    table_rows = []
    try:
        for name, backend in backends.items():
            # -- accuracy vs the interpreter (tab04's q-error framing:
            # identical raw predictions mean identical q-errors) -------
            predictions = backend.predict(pool)
            max_delta = float(np.max(np.abs(predictions - reference))) \
                if len(pool) else 0.0
            bit_identical = bool(np.array_equal(predictions, reference))

            # -- tab01 shape: single-row latency -----------------------
            x = gate_vectors[0]
            single_latency = _median_time(
                lambda: backend.predict_one(x), repeats=300)

            # -- fig05 shape: batch latency by pipeline count ----------
            scaling = {}
            for count in PIPELINE_COUNTS:
                batch = np.ascontiguousarray(
                    pool[rng.choice(len(pool), size=count, replace=True)])
                repeats = max(3, min(50, 2000 // count))
                scaling[count] = _median_time(
                    lambda b=batch: backend.predict(b), repeats)

            # -- tab02 shape: rows/second, single vs batch-256 ---------
            def single_sweep(vecs=gate_vectors, b=backend):
                for vector in vecs:
                    b.predict_one(vector)

            single_rps = _rows_per_second(single_sweep, GATE_BATCH_ROWS)
            batch_rps = _rows_per_second(
                lambda b=backend: b.predict(gate_rows), GATE_BATCH_ROWS)

            record["backends"][name] = {
                "bit_identical_to_interpreter": bit_identical,
                "max_abs_delta": max_delta,
                "single_row_latency_us": round(single_latency * 1e6, 3),
                "latency_by_pipelines_us": {
                    str(c): round(s * 1e6, 3) for c, s in scaling.items()},
                "single_rows_per_second": round(single_rps),
                "batch256_rows_per_second": round(batch_rps),
                "batch_vs_single_speedup": round(batch_rps / single_rps, 2),
            }
            table_rows.append(
                [name, format_seconds(single_latency),
                 format_seconds(scaling[1000]),
                 f"{batch_rps:,.0f}", f"{batch_rps / single_rps:.1f}x",
                 "0" if bit_identical else f"{max_delta:.2e}"])
    finally:
        for model in compiled.values():
            model.close()

    # The serving hot path in one line: a 256-row micro-batch through
    # the flat-array batch entry.
    flat = compile_model(t3.booster, strategy="flat_array")
    try:
        benchmark(lambda: flat.predict(gate_rows))
    finally:
        flat.close()

    gate = record["backends"]["flat_array"]
    per_row_compiled = min(
        record["backends"][name]["single_rows_per_second"]
        for name in sorted(STRATEGIES))
    record["gate"] = {
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "flat_batch256_rows_per_second": gate["batch256_rows_per_second"],
        "slowest_per_row_compiled_rows_per_second": per_row_compiled,
        "speedup_vs_own_single": gate["batch_vs_single_speedup"],
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print_table(
        "Codegen backend matrix (fig05/tab01/tab02 shapes)",
        ["backend", "1-row", "1000-row", "batch-256 rows/s",
         "batch/single", "max |delta|"],
        table_rows,
        note=f"gate: flat_array batch >= {MIN_BATCH_SPEEDUP}x per-row "
             f"compiled at {GATE_BATCH_ROWS} rows; "
             f"recorded in {RESULT_PATH.name}")

    # -- accuracy gates ----------------------------------------------
    for name in ("nested_if", "flat_array"):
        assert record["backends"][name]["bit_identical_to_interpreter"], (
            f"{name} diverged from the interpreter by "
            f"{record['backends'][name]['max_abs_delta']}")
    scale = float(np.max(np.abs(reference))) or 1.0
    f32_delta = record["backends"]["flat_array_f32"]["max_abs_delta"]
    assert f32_delta <= F32_RTOL * scale, (
        f"flat_array_f32 delta {f32_delta} exceeds the documented "
        f"tolerance {F32_RTOL} x {scale}")

    # -- throughput gate: batch-native must beat per-row FFI by 5x ----
    assert gate["batch256_rows_per_second"] >= \
        MIN_BATCH_SPEEDUP * per_row_compiled, (
            f"flat_array batch-256 {gate['batch256_rows_per_second']} "
            f"rows/s vs per-row compiled {per_row_compiled} rows/s — "
            f"expected >= {MIN_BATCH_SPEEDUP}x")

    # fig05 sanity: compiled batch latency stays in the microsecond
    # regime at one pipeline and scales sublinearly past it.
    one = record["backends"]["flat_array"]["latency_by_pipelines_us"]["1"]
    thousand = \
        record["backends"]["flat_array"]["latency_by_pipelines_us"]["1000"]
    assert one < 50.0
    assert thousand < one * 1000
