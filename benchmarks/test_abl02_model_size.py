"""Ablation — ensemble size: the accuracy/latency trade-off.

The paper fixes 200 trees with ~30 leaves (Section 2.3). This ablation
sweeps the number of boosting rounds and reports test accuracy plus
compiled single-call latency, showing 200 sits at the point of
diminishing returns while latency grows linearly with tree count.
"""

import time

import numpy as np

from repro.metrics import summarize_predictions
from repro.core.dataset import build_dataset
from repro.core.targets import inverse_transform
from repro.treecomp.compiler import compile_model, find_c_compiler
from repro.experiments.reporting import print_table

ROUNDS = (25, 50, 100, 200)


def test_ablation_ensemble_size(benchmark, ctx, t3, test_queries):
    test = ctx.cache.get_or_build(
        ctx._key("test-dataset-exact"), lambda: build_dataset(test_queries))
    cards = np.maximum(test.input_cards, 1.0)
    vector = np.ascontiguousarray(test.X[0])
    have_compiler = find_c_compiler() is not None

    def evaluate(n_trees):
        booster = t3.booster.truncated(n_trees)
        predicted = inverse_transform(booster.predict(test.X)) * cards
        totals = np.zeros(test.n_queries)
        np.add.at(totals, test.query_index, predicted)
        summary = summarize_predictions(totals, test.query_times())
        latency = float("nan")
        if have_compiler:
            compiled = compile_model(booster)
            compiled.predict_one(vector)
            start = time.perf_counter()
            repeats = 3000
            for _ in range(repeats):
                compiled.predict_one(vector)
            latency = (time.perf_counter() - start) / repeats
            compiled.close()
        return summary, latency

    results = benchmark.pedantic(
        lambda: [evaluate(n) for n in ROUNDS
                 if n <= t3.booster.n_trees], rounds=1, iterations=1)
    rounds_used = [n for n in ROUNDS if n <= t3.booster.n_trees]
    print_table(
        "Ablation: ensemble size vs accuracy and compiled latency",
        ["Trees", "p50", "p90", "avg", "latency/call"],
        [[n, f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}",
          f"{lat * 1e6:.2f}us"] for n, (s, lat) in zip(rounds_used, results)],
        note="paper uses 200 trees x ~30 leaves; accuracy saturates, "
             "latency grows with tree count")

    summaries = [s for s, _ in results]
    # Overall accuracy improves (or holds) as trees are added; the
    # boosting objective optimizes aggregate error, and outliers (the
    # mean) are where additional rounds pay off.
    assert summaries[-1].mean <= summaries[0].mean
    if have_compiler and len(results) >= 2:
        latencies = [lat for _, lat in results]
        assert latencies[-1] > latencies[0]  # more trees, more work
