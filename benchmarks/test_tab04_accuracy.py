"""Table 4 — T3 accuracy in q-error (exact cardinalities).

Paper's rows (p50 / p90 / avg):
  Train queries             ~1.04 / ~1.3  / ~1.3
  All TPC-DS test queries   ~1.2  / ~2    / ~1.5
  TPC-DS benchmark queries   1.30 / 2.77  / 1.94
  TPC-DS sf100 test          -    / -     / 1.57
  TPC-DS sf100 benchmark     -    / -     / 2.12
"""

from repro.core.dataset import build_dataset
from repro.experiments.reporting import print_table


def test_table4_accuracy(benchmark, ctx, t3, train_queries, test_queries):
    fixed = [q for q in test_queries if q.group == "Fixed"]
    sf100 = [q for q in test_queries if q.instance_name == "tpcds_sf100"]
    sf100_fixed = [q for q in sf100 if q.group == "Fixed"]

    def evaluate_all():
        return {
            "Train queries": t3.evaluate(train_queries),
            "All TPC-DS test queries": t3.evaluate(test_queries),
            "TPC-DS benchmark queries": t3.evaluate(fixed),
            "TPC-DS sf100 test queries": t3.evaluate(sf100),
            "TPC-DS sf100 benchmark queries": t3.evaluate(sf100_fixed),
        }

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    print_table(
        "Table 4: T3 accuracy (q-error)",
        ["Queries", "p50", "p90", "avg", "n"],
        [[name, f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}", s.count]
         for name, s in results.items()],
        note="paper: train ~1.3 avg; TPC-DS test ~1.5 avg; "
             "benchmark queries hardest")

    train = results["Train queries"]
    test = results["All TPC-DS test queries"]
    bench = results["TPC-DS benchmark queries"]
    # Shape assertions from the paper's narrative.
    assert train.mean < test.mean          # unseen instance is harder
    assert test.p50 < 2.0                  # competitive zero-shot accuracy
    assert bench.mean >= test.mean * 0.8   # fixed suite at least as hard
