"""Figure 12 — accuracy under artificially degraded cardinality estimates.

Cardinalities are distorted by log-uniform factors from 1x to 1000x.
Paper: both T3 and Zero Shot degrade drastically with distortion; they
start at roughly equal accuracy, T3 degrades slightly faster for small
errors, Zero Shot degrades worse beyond ~500x.
"""

import numpy as np

from repro.experiments.reporting import print_series

DISTORTIONS = (1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)


def test_figure12_distortion_sweep(benchmark, ctx, t3, test_queries):
    zeroshot = ctx.zeroshot()
    sample = test_queries

    def sweep():
        t3_p50, zs_p50 = [], []
        for distortion in DISTORTIONS:
            t3_p50.append(t3.evaluate(sample, distortion=distortion,
                                      seed=3).p50)
            zs_p50.append(zeroshot.evaluate(sample, distortion=distortion,
                                            seed=3).p50)
        return t3_p50, zs_p50

    t3_series, zs_series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Figure 12: p50 q-error under degraded cardinality estimates",
        "distortion",
        {"T3": t3_series, "Zero Shot": zs_series},
        [f"{d:g}x" for d in DISTORTIONS],
        note="paper: both degrade drastically; garbage in, garbage out")

    # Both models degrade: 1000x clearly worse than exact cardinalities,
    # with an increasing trend across the sweep.
    assert t3_series[-1] > 1.2 * t3_series[0]
    assert zs_series[-1] > 1.1 * zs_series[0]
    from scipy import stats as scipy_stats
    trend = scipy_stats.spearmanr(DISTORTIONS, t3_series).statistic
    assert trend > 0.7
