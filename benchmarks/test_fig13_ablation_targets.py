"""Figure 13 — ablation: per-tuple vs per-pipeline vs per-query prediction.

Three variants trained identically on the non-TPC-DS corpus:
  1. T3: per-pipeline feature vectors, per-tuple targets,
  2. per-pipeline vectors, absolute pipeline-time targets,
  3. one summed feature vector per query, absolute query-time target.

Paper: T3's per-tuple, per-pipeline design is substantially more
accurate than both ablations; the single-vector variant is worst.
"""

from repro.core.ablation import TargetMode
from repro.experiments.reporting import print_table

_LABELS = {
    TargetMode.PER_TUPLE: "T3: per tuple, per pipeline",
    TargetMode.PER_PIPELINE: "per pipeline (absolute time)",
    TargetMode.PER_QUERY: "per query (single vector)",
}


def test_figure13_target_ablation(benchmark, ctx, test_queries):
    def run():
        results = {}
        for mode in (TargetMode.PER_TUPLE, TargetMode.PER_PIPELINE,
                     TargetMode.PER_QUERY):
            model = ctx.t3_variant(target_mode=mode)
            results[mode] = model.evaluate(test_queries)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 13: prediction-target ablation (TPC-DS test)",
        ["Variant", "p50", "p90", "avg", "n"],
        [[_LABELS[mode], f"{s.p50:.2f}", f"{s.p90:.2f}", f"{s.mean:.2f}",
          s.count] for mode, s in results.items()],
        note="paper: per-tuple clearly best, single-vector worst")

    per_tuple = results[TargetMode.PER_TUPLE]
    per_pipeline = results[TargetMode.PER_PIPELINE]
    per_query = results[TargetMode.PER_QUERY]
    assert per_tuple.p50 <= per_pipeline.p50
    assert per_tuple.p50 < per_query.p50
    assert per_pipeline.p50 <= per_query.p50 * 1.2
