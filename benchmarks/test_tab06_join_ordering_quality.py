"""Table 6 — execution time of JOB plans chosen by each cost model.

Paper (sum over all JOB queries, forced plans, true cardinalities for
C_out and T3; the native optimizer relies on its own estimates):
  C_out 1.348 s | T3 1.366 s (+1.6 %) | Native DB 1.382 s

Reproduction target: T3's plans within a few percent of C_out's, both
slightly better than the estimate-driven native ordering.
"""

from repro.engine.optimizer import Optimizer, OptimizerConfig
from repro.engine.simulator import ExecutionSimulator
from repro.datagen.benchmarks_job import job_queries
from repro.datagen.instances import get_instance
from repro.joinorder import (
    CoutJoinCost,
    JoinGraph,
    T3JoinCost,
    dpsize,
    greedy_order,
)
from repro.joinorder.dpsize import tree_to_logical
from repro.joinorder.joingraph import GraphCardinalityModel
from repro.experiments.reporting import print_table


def test_table6_plan_quality(benchmark, ctx, t3):
    instance = get_instance("imdb")
    # Forced plans: the engine must not restructure the join order.
    optimizer = Optimizer(instance.schema, instance.catalog,
                          OptimizerConfig(
                              enable_small_table_elimination=False,
                              enable_index_nl_join=False))
    simulator = ExecutionSimulator(instance.catalog)
    graphs = [(name, JoinGraph.from_logical(logical, instance.catalog))
              for name, logical in job_queries(instance)]

    def execute_tree(tree, graph, name):
        logical = tree_to_logical(tree, graph)
        plan = optimizer.optimize(logical, name)
        # Forced plans may combine subsets linked by several edges; a
        # real engine applies all of them, which the graph-backed model
        # captures.
        model = GraphCardinalityModel(graph, instance.catalog)
        return simulator.query_time(plan, model)

    def run_all():
        totals = {"Cout": 0.0, "T3": 0.0, "Native DB": 0.0}
        wins = {"Cout": 0, "T3": 0, "ties": 0}
        for name, graph in graphs:
            cout_tree = dpsize(graph, CoutJoinCost()).tree
            t3_tree = dpsize(graph, T3JoinCost(t3.predict_raw_one,
                                               t3.registry,
                                               instance.catalog)).tree
            native_tree = greedy_order(graph, estimation_sigma=0.8, seed=7)
            cout_time = execute_tree(cout_tree, graph, name)
            t3_time = execute_tree(t3_tree, graph, name)
            totals["Cout"] += cout_time
            totals["T3"] += t3_time
            totals["Native DB"] += execute_tree(native_tree, graph, name)
            if abs(cout_time - t3_time) < 1e-12:
                wins["ties"] += 1
            elif cout_time < t3_time:
                wins["Cout"] += 1
            else:
                wins["T3"] += 1
        return totals, wins

    totals, wins = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Table 6: simulated execution time of all JOB queries",
        ["Cost Model", "Execution Time"],
        [[name, f"{seconds:.3f}s"] for name, seconds in totals.items()],
        note=f"plan agreement: {wins}; paper: 1.348s / 1.366s / 1.382s")

    # Shape: most plans agree (ties dominate the per-query comparison);
    # T3's total stays within ~1.6x of Cout's (the paper's stronger
    # 14k-query model reaches +1.6 %); Cout beats the estimate-driven
    # native ordering.
    assert totals["T3"] <= totals["Cout"] * 1.6
    assert totals["Cout"] <= totals["Native DB"] * 1.05
    assert wins["ties"] >= 20
