#!/usr/bin/env python3
"""Inspecting a trained T3: importances, breakdowns, explanations.

Adopters of a cost model need visibility into its behaviour. This
example trains a T3 and shows the three inspection tools:

1. feature importances — which pipeline features the trees split on,
2. error breakdown — accuracy by query group and by runtime decade,
3. prediction explanation — tracing one pipeline vector through the
   ensemble: which features were tested, what each tree contributed.

Run:  python examples/model_inspection.py
"""

from repro import T3Model, WorkloadConfig, build_corpus_workload
from repro.core.analysis import (
    error_breakdown,
    explain_prediction,
    feature_importance_report,
    format_importance_table,
    runtime_bucket,
)
from repro.core.dataset import build_dataset


def main() -> None:
    print("training a T3 on four instances ...")
    config = WorkloadConfig(queries_per_structure=5,
                            include_fixed_benchmarks=False)
    train = build_corpus_workload(
        ["tpch_sf1", "financial", "airline", "ssb"], config)
    test = build_corpus_workload(["tpcds_sf1"], config)
    model = T3Model.train(train)

    print("\n1. Top feature importances (split counts)")
    print(format_importance_table(feature_importance_report(model, top=12)))

    print("\n2. Error breakdown by query group (q-error p50/p90/avg)")
    for group, summary in error_breakdown(
            model, test, key=lambda q: q.group).items():
        print(f"   {group:10s} {summary.row()}")

    print("\n   ... and by runtime decade")
    for bucket, summary in error_breakdown(
            model, test, key=runtime_bucket).items():
        print(f"   {bucket:10s} {summary.row()}")

    print("\n3. Explaining one prediction")
    dataset = build_dataset(test[:3])
    vector = dataset.X[0]
    explanation = explain_prediction(model, vector)
    print(f"   raw (transformed) prediction: "
          f"{explanation.raw_prediction:.3f}")
    print(f"   = base score {explanation.base_score:.3f} "
          f"+ {model.booster.n_trees} tree contributions "
          f"(sum {explanation.tree_contributions.sum():+.3f})")
    print("   most-tested features on the decision paths:")
    for name, touches in explanation.top_features(8):
        print(f"     {name:44s} tested {touches:3d} times")


if __name__ == "__main__":
    main()
