#!/usr/bin/env python3
"""Use-case: latency-aware query scheduling with T3 predictions.

The paper's motivating scenario (Section 1): a burst of concurrent query
submissions must be scheduled across compute clusters; the scheduler
assigns queries using predicted execution times, and its prediction
latency is added to *every* query. This example compares three
schedulers on a simulated burst:

* FIFO (no predictions),
* SJF with a slow neural predictor (prediction latency counts!),
* SJF with compiled T3.

Reported metric: mean flow time (queueing + prediction + execution).

Run:  python examples/scheduling.py
"""

import heapq
import time

import numpy as np

from repro import T3Model, WorkloadConfig, build_corpus_workload
from repro.baselines.zeroshot import ZeroShotConfig, ZeroShotModel
from repro.core.dataset import cardinality_model_for

N_WORKERS = 4


def simulate_schedule(queries, order, prediction_latency):
    """Mean flow time when executing ``queries`` in ``order`` on
    ``N_WORKERS`` identical workers; every query first waits for its
    prediction (serial, at submission)."""
    workers = [0.0] * N_WORKERS
    heapq.heapify(workers)
    submission_clock = 0.0
    flow_times = []
    for index in order:
        submission_clock += prediction_latency
        start = max(heapq.heappop(workers), submission_clock)
        finish = start + queries[index].median_time
        heapq.heappush(workers, finish)
        flow_times.append(finish)
    return float(np.mean(flow_times))


def main() -> None:
    print("Building workload and models ...")
    config = WorkloadConfig(queries_per_structure=5,
                            include_fixed_benchmarks=False)
    train = build_corpus_workload(["tpch_sf1", "financial", "airline",
                                   "ssb", "walmart"], config)
    burst = build_corpus_workload(["tpcds_sf1"], config)
    t3 = T3Model.train(train)
    nn = ZeroShotModel(ZeroShotConfig(n_epochs=60)).fit(train)

    # Measure real prediction latencies for this burst.
    models = [cardinality_model_for(q) for q in burst]

    start = time.perf_counter()
    t3_predictions = [t3.predict_query(q.plan, m)
                      for q, m in zip(burst, models)]
    t3_latency = (time.perf_counter() - start) / len(burst)

    start = time.perf_counter()
    nn_predictions = [nn.predict_query(q.plan, m)
                      for q, m in zip(burst, models)]
    nn_latency = (time.perf_counter() - start) / len(burst)

    fifo_order = list(range(len(burst)))
    t3_order = list(np.argsort(t3_predictions))
    nn_order = list(np.argsort(nn_predictions))
    oracle_order = list(np.argsort([q.median_time for q in burst]))

    results = [
        ("FIFO (no prediction)", simulate_schedule(burst, fifo_order, 0.0)),
        ("SJF + NN predictor",
         simulate_schedule(burst, nn_order, nn_latency)),
        ("SJF + T3 (compiled)",
         simulate_schedule(burst, t3_order, t3_latency)),
        ("SJF + oracle", simulate_schedule(burst, oracle_order, 0.0)),
    ]

    print(f"\nburst of {len(burst)} queries on {N_WORKERS} workers")
    print(f"prediction latency: T3 {t3_latency * 1e6:.0f}us/query, "
          f"NN {nn_latency * 1e6:.0f}us/query\n")
    print(f"{'scheduler':24s} {'mean flow time':>15s}")
    for name, flow in results:
        print(f"{name:24s} {flow * 1e3:12.2f}ms")

    fifo = results[0][1]
    t3_flow = results[2][1]
    print(f"\nT3-driven SJF improves mean flow time by "
          f"{(1 - t3_flow / fifo) * 100:.1f}% over FIFO "
          f"(oracle bound: {(1 - results[3][1] / fifo) * 100:.1f}%)")

    truth = [q.median_time for q in burst]
    t3_rho = _spearman(t3_predictions, truth)
    nn_rho = _spearman(nn_predictions, truth)
    print(f"prediction/rank quality (Spearman vs truth): "
          f"T3 {t3_rho:.3f}, NN {nn_rho:.3f}")
    print("note: in this Python harness featurization dominates T3's "
          "end-to-end latency;\nthe compiled model call itself is "
          "microseconds (see benchmarks/test_tab01).")


def _spearman(a, b):
    ranks_a = np.argsort(np.argsort(a)).astype(float)
    ranks_b = np.argsort(np.argsort(b)).astype(float)
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


if __name__ == "__main__":
    main()
