#!/usr/bin/env python3
"""Quickstart: train a T3 model and predict query execution times.

This walks the full pipeline of the paper in miniature:

1. build benchmarked workloads over a few database instances
   (random queries, optimized to physical plans, timed on the
   execution-simulator substrate),
2. train the Tuple Time Tree and compile it to native machine code,
3. predict the execution time of unseen queries on an unseen database
   instance and compare against the measured truth.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    T3Model,
    WorkloadConfig,
    build_corpus_workload,
    cardinality_model_for,
)
from repro.metrics import q_error, summarize_predictions

TRAIN_INSTANCES = ["tpch_sf1", "imdb", "financial", "airline", "ssb"]
TEST_INSTANCES = ["tpcds_sf1"]          # never seen during training


def main() -> None:
    config = WorkloadConfig(queries_per_structure=6,
                            include_fixed_benchmarks=False)

    print("1. Generating and benchmarking training workloads ...")
    train_queries = build_corpus_workload(TRAIN_INSTANCES, config)
    test_queries = build_corpus_workload(TEST_INSTANCES, config)
    print(f"   {len(train_queries)} training / {len(test_queries)} test "
          f"queries")

    print("2. Training T3 (200 boosted trees, MAPE objective) ...")
    start = time.time()
    model = T3Model.train(train_queries)
    print(f"   trained in {time.time() - start:.1f}s, "
          f"compiled to native code: {model.is_compiled}")

    print("3. Predicting unseen TPC-DS queries ...")
    rows = []
    for query in test_queries[:8]:
        cardinalities = cardinality_model_for(query)
        start = time.perf_counter()
        predicted = model.predict_query(query.plan, cardinalities)
        latency = time.perf_counter() - start
        rows.append((query.name, predicted, query.median_time, latency))

    print(f"\n   {'query':34s} {'predicted':>12s} {'measured':>12s} "
          f"{'q-error':>8s} {'latency':>9s}")
    for name, predicted, actual, latency in rows:
        print(f"   {name:34s} {predicted * 1e3:10.3f}ms "
              f"{actual * 1e3:10.3f}ms {q_error(predicted, actual):8.2f} "
              f"{latency * 1e6:7.1f}us")

    predictions = [model.predict_benchmarked(q) for q in test_queries]
    actuals = [q.median_time for q in test_queries]
    summary = summarize_predictions(predictions, actuals)
    print(f"\n   zero-shot accuracy on {len(test_queries)} unseen queries: "
          f"p50={summary.p50:.2f}  p90={summary.p90:.2f}  "
          f"avg={summary.mean:.2f}  (q-error)")

    # Model-only latency: the figure the paper headlines (~4us).
    vector = model.registry.vectors_for_plan(
        test_queries[0].plan, cardinality_model_for(test_queries[0]))[0][0]
    vector = np.ascontiguousarray(vector)
    model.predict_raw_one(vector)
    start = time.perf_counter()
    n = 5000
    for _ in range(n):
        model.predict_raw_one(vector)
    per_call = (time.perf_counter() - start) / n
    print(f"   compiled model evaluation latency: {per_call * 1e6:.1f}us "
          f"per pipeline (paper: ~1.5us/pipeline, ~4us/query)")


if __name__ == "__main__":
    main()
