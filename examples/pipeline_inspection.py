#!/usr/bin/env python3
"""Inside T3: pipelines, feature vectors, and per-pipeline predictions.

Recreates the paper's running example (Figure 2 / Listings 2-4): TPC-H
Q5 is optimized — the optimizer folds the tiny nation/region tables
into BETWEEN + IN predicates on the customer scan — decomposed into
pipelines, featurized, and predicted pipeline by pipeline.

Run:  python examples/pipeline_inspection.py
"""

from repro import T3Model, WorkloadConfig, build_corpus_workload
from repro.core.dataset import cardinality_model_for
from repro.core.features import default_registry
from repro.datagen.benchmarks_tpch import tpch_query
from repro.datagen.instances import get_instance
from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.explain import explain, explain_pipelines
from repro.engine.optimizer import Optimizer
from repro.engine.pipelines import (
    decompose_into_pipelines,
    pipeline_input_cardinality,
)


def main() -> None:
    instance = get_instance("tpch_sf10")
    exact = ExactCardinalityModel(instance.catalog)
    optimizer = Optimizer(instance.schema, instance.catalog)

    print("=" * 72)
    print("TPC-H Q5 on tpch_sf10 (the paper's running example)")
    print("=" * 72)
    plan = optimizer.optimize(tpch_query("tpch_q5", instance), "tpch_q5")
    print(explain(plan, exact))
    print("\nNote: nation and region do not appear — the optimizer "
          "computed the\nqualifying nation keys and replaced the joins "
          "with BETWEEN + IN predicates\n(compare the paper's Listing 3).")

    print("\n" + "=" * 72)
    print("Pipeline decomposition with tuple flows (Figure 2)")
    print("=" * 72)
    print(explain_pipelines(plan, exact))

    registry = default_registry()
    pipelines = decompose_into_pipelines(plan)
    customer_pipeline = next(
        p for p in pipelines
        if getattr(p.stages[0].operator, "table", None) == "customer")
    print("\n" + "=" * 72)
    print(f"Feature vector of the customer pipeline "
          f"(compare Listing 3; {registry.n_features} features, "
          f"zeros omitted)")
    print("=" * 72)
    vector = registry.vector_for_pipeline(customer_pipeline, exact)
    print(registry.describe_vector(vector))

    print("\n" + "=" * 72)
    print("Per-pipeline prediction (a trained model)")
    print("=" * 72)
    print("training a small T3 on tpch_sf1 + financial + ssb ...")
    train = build_corpus_workload(
        ["tpch_sf1", "financial", "ssb"],
        WorkloadConfig(queries_per_structure=5,
                       include_fixed_benchmarks=True))
    model = T3Model.train(train)

    predicted = model.predict_pipeline_times(plan, exact)
    print(f"\n{'pipeline':10s} {'input card':>14s} {'predicted time':>15s}")
    for pipeline, time_predicted in zip(pipelines, predicted):
        cardinality = pipeline_input_cardinality(pipeline, exact)
        print(f"Pipeline {pipeline.index}  {cardinality:14,.0f} "
              f"{time_predicted * 1e3:12.3f}ms   ({pipeline.label()})")
    print(f"\npredicted query time: {predicted.sum() * 1e3:.3f}ms "
          f"(sum of pipelines)")

    from repro.engine.simulator import ExecutionSimulator
    simulator = ExecutionSimulator(instance.catalog)
    print(f"measured query time:  "
          f"{simulator.query_time(plan) * 1e3:.3f}ms "
          f"(execution substrate)")


if __name__ == "__main__":
    main()
