#!/usr/bin/env python3
"""Running queries for real: the vectorized executor on generated data.

Everything else in this repository works from statistics; this example
materializes actual numpy data for a TPC-H instance (scaled down),
executes physical plans on it with the vectorized executor, and checks
the engine's cardinality model against observed row counts.

Run:  python examples/real_execution.py
"""

import time

from repro.datagen.instances import get_instance
from repro.datagen.tablegen import generate_table_store
from repro.datagen.benchmarks_tpch import tpch_query
from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.executor import VectorizedExecutor
from repro.engine.optimizer import Optimizer
from repro.metrics import q_error

SCALE = 0.01  # 1 % of TPC-H sf1: 60k lineitem rows
QUERIES = ["tpch_q1", "tpch_q3", "tpch_q5", "tpch_q6", "tpch_q10",
           "tpch_q12", "tpch_q14", "tpch_q19"]


def main() -> None:
    instance = get_instance("tpch_sf1")
    print(f"materializing TPC-H data at {SCALE:.0%} scale ...")
    start = time.time()
    store = generate_table_store(instance, scale_fraction=SCALE, seed=42)
    total_rows = sum(store.row_count(t) for t in store.table_names)
    print(f"  {total_rows:,} rows across {len(store.table_names)} tables "
          f"in {time.time() - start:.1f}s")

    optimizer = Optimizer(instance.schema, instance.catalog)
    executor = VectorizedExecutor(store)
    exact = ExactCardinalityModel(instance.catalog)

    print(f"\n{'query':10s} {'rows':>8s} {'exec time':>10s} "
          f"{'pipelines':>9s}   cardinality-model check")
    for name in QUERIES:
        plan = optimizer.optimize(tpch_query(name, instance), name)
        result = executor.execute(plan)

        # Compare the model's root-output estimate (full scale) with the
        # observed count. Unbounded outputs scale with the data volume;
        # bounded ones (group counts, top-k) do not.
        modeled = exact.output_cardinality(plan.root)
        observed = result.n_result_rows
        expectation = modeled if modeled < 1000 else modeled * SCALE
        check = q_error(max(observed, 1.0), max(expectation, 1.0))
        verdict = "ok" if check < 3.0 else f"off by {check:.1f}x"
        print(f"{name:10s} {observed:8,} {result.total_time * 1e3:8.2f}ms "
              f"{len(result.pipeline_times):9d}   "
              f"model={modeled:,.0f} @sf1 -> {verdict}")
        exact.reset()

    print("\nthe executor validates the substrate: the same plans, "
          "pipelines and\ncardinality rules that T3 trains on actually "
          "run and produce results.")


if __name__ == "__main__":
    main()
