#!/usr/bin/env python3
"""Use-case: T3 as a cost model inside DPsize join ordering (Section 5.5).

Optimizes Join Order Benchmark queries with DPsize under two cost
models — C_out (three additions per step) and T3 (two compiled-model
calls per step, with completed-pipeline caching) — then compares
optimization effort and the quality of the chosen plans on the
execution substrate.

Run:  python examples/join_ordering.py
"""

import time

from repro import T3Model, WorkloadConfig, build_corpus_workload
from repro.datagen.benchmarks_job import job_queries
from repro.datagen.instances import get_instance
from repro.engine.optimizer import Optimizer, OptimizerConfig
from repro.engine.simulator import ExecutionSimulator
from repro.joinorder import (
    CoutJoinCost,
    JoinGraph,
    T3JoinCost,
    dpsize,
    join_tree_tables,
)
from repro.joinorder.dpsize import tree_to_logical
from repro.joinorder.joingraph import GraphCardinalityModel

N_QUERIES = 30  # subset for a quick demo; benchmarks/ runs all 113


def main() -> None:
    instance = get_instance("imdb")
    print("training T3 on non-IMDB instances ...")
    train = build_corpus_workload(
        ["tpch_sf1", "financial", "airline", "ssb"],
        WorkloadConfig(queries_per_structure=5,
                       include_fixed_benchmarks=False))
    t3 = T3Model.train(train)

    queries = job_queries(instance)[:N_QUERIES]
    graphs = [(name, JoinGraph.from_logical(logical, instance.catalog))
              for name, logical in queries]

    optimizer = Optimizer(instance.schema, instance.catalog,
                          OptimizerConfig(
                              enable_small_table_elimination=False))
    simulator = ExecutionSimulator(instance.catalog)

    totals = {"Cout": [0.0, 0, 0.0], "T3": [0.0, 0, 0.0]}
    same_plans = 0
    for name, graph in graphs:
        results = {}
        for label, cost_model in (
                ("Cout", CoutJoinCost()),
                ("T3", T3JoinCost(t3.predict_raw_one, t3.registry,
                                  instance.catalog))):
            result = dpsize(graph, cost_model)
            totals[label][0] += result.optimization_seconds
            totals[label][1] += result.model_calls
            model = GraphCardinalityModel(graph, instance.catalog)
            plan = optimizer.optimize(tree_to_logical(result.tree, graph),
                                      name)
            totals[label][2] += simulator.query_time(plan, model)
            results[label] = join_tree_tables(result.tree, graph)
        if results["Cout"] == results["T3"]:
            same_plans += 1

    print(f"\noptimized {len(graphs)} JOB queries "
          f"({sum(g.n_relations for _, g in graphs)} relations total)\n")
    print(f"{'cost model':10s} {'opt. time':>11s} {'model calls':>12s} "
          f"{'time/call':>10s} {'exec time of plans':>19s}")
    for label, (seconds, calls, execution) in totals.items():
        print(f"{label:10s} {seconds * 1e3:9.1f}ms {calls:12,} "
              f"{seconds / calls * 1e6:8.2f}us {execution:17.3f}s")
    print(f"\nidentical join orders: {same_plans}/{len(graphs)}")
    print("paper's conclusion: T3 is usable here, but simple cost "
          "models suffice for\njoin ordering — T3's strength is "
          "latency-sensitive prediction, not optimization.")


if __name__ == "__main__":
    main()
