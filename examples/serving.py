#!/usr/bin/env python3
"""Serving: run the online prediction service and hit it over HTTP.

This demonstrates the full serving stack in one process:

1. train a small T3 model and register it (warm-compiled) in a
   versioned model registry,
2. start the HTTP service — micro-batching queue, plan/feature cache,
   admission control, metrics,
3. issue concurrent ``POST /predict`` requests from client threads
   (repeated queries hit the plan cache; concurrent requests coalesce
   into single native batch calls),
4. read back ``/healthz`` and ``/metrics``.

Run:  python examples/serving.py
"""

import json
import threading
import time
import urllib.request

from repro import WorkloadConfig, build_corpus_workload
from repro.core.model import T3Config, T3Model
from repro.trees.boosting import BoostingParams
from repro.serving import ModelRegistry, PredictionService, ServingConfig, ServingServer

QUERIES = [
    "SELECT count(*) FROM lineitem WHERE l_quantity <= 10",
    "SELECT count(*) FROM orders WHERE o_totalprice <= 1000",
    "SELECT o_orderpriority, count(*) FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey GROUP BY o_orderpriority",
    "SELECT count(*) FROM customer WHERE c_acctbal <= 500",
]


def post_predict(url: str, sql: str, instance: str = "tpch_sf1") -> dict:
    body = json.dumps({"sql": sql, "instance": instance}).encode()
    request = urllib.request.Request(f"{url}/predict", data=body,
                                     method="POST")
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    print("1. Training a small T3 model ...")
    workload = build_corpus_workload(
        ["tpch_sf1", "financial"],
        WorkloadConfig(queries_per_structure=3,
                       include_fixed_benchmarks=False))
    model = T3Model.train(workload, T3Config(
        boosting=BoostingParams(n_rounds=50, objective="mape",
                                validation_fraction=0.2)))

    print("2. Starting the prediction service ...")
    registry = ModelRegistry()
    entry = registry.register(model, "tpch-demo")
    service = PredictionService(registry, ServingConfig(batch_wait_s=0.001))
    with ServingServer(service, port=0) as server:
        print(f"   {server.url}  (model {entry.key}, "
              f"backend: {entry.backend})")

        print("3. One cold request (parse + featurize + infer):")
        result = post_predict(server.url, QUERIES[0])
        stages = result["stages"]
        print(f"   predicted {result['predicted_seconds'] * 1e3:.3f} ms   "
              f"cache_hit={result['cache_hit']}  "
              f"parse={stages['parse_seconds'] * 1e6:.0f}us  "
              f"featurize={stages['featurize_seconds'] * 1e6:.0f}us  "
              f"infer={stages['infer_seconds'] * 1e6:.0f}us")

        print("4. 200 concurrent requests over 4 distinct queries ...")
        n_threads, per_thread = 8, 25
        errors = []

        def client(thread_index: int) -> None:
            for i in range(per_thread):
                sql = QUERIES[(thread_index + i) % len(QUERIES)]
                try:
                    post_predict(server.url, sql)
                except Exception as exc:  # noqa: BLE001 - demo report
                    errors.append(exc)

        threads = [threading.Thread(target=client, args=(t,))
                   for t in range(n_threads)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        total = n_threads * per_thread
        print(f"   {total - len(errors)}/{total} ok in {elapsed:.2f}s "
              f"({total / elapsed:,.0f} req/s)")

        health = json.loads(urllib.request.urlopen(
            f"{server.url}/healthz").read())
        cache = health["plan_cache"]
        print(f"5. /healthz: status={health['status']}  cache hits="
              f"{cache['hits']} misses={cache['misses']}")

        metrics = urllib.request.urlopen(f"{server.url}/metrics").read()
        print("6. /metrics (excerpt):")
        for line in metrics.decode().splitlines():
            if line.startswith(("t3_serving_requests_total",
                                "t3_serving_cache_hits_total",
                                "t3_serving_batches_total",
                                "t3_serving_infer_seconds_sum",
                                "t3_serving_queue_depth")):
                print(f"   {line}")


if __name__ == "__main__":
    main()
