"""Tests for figure-data CSV export."""

import pytest

from repro.errors import ReproError
from repro.experiments.figures import FigureData, export_all, read_csv, write_csv


def _figure(name="fig"):
    return FigureData(name, "x", {"a": [1.0, 2.0], "b": [3.0, 4.0]},
                      [10, 20], notes="n")


class TestFigureData:
    def test_rows(self):
        rows = _figure().rows()
        assert rows[0] == ["x", "a", "b"]
        assert rows[1] == [10, 1.0, 3.0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            FigureData("f", "x", {"a": [1.0]}, [1, 2])

    def test_empty_series_rejected(self):
        with pytest.raises(ReproError):
            FigureData("f", "x", {}, [])


class TestCsvRoundtrip:
    def test_write_read(self, tmp_path):
        path = write_csv(_figure(), tmp_path / "f.csv")
        loaded = read_csv(path)
        assert loaded.x_label == "x"
        assert loaded.series["a"] == [1.0, 2.0]
        assert loaded.series["b"] == [3.0, 4.0]

    def test_creates_directories(self, tmp_path):
        path = write_csv(_figure(), tmp_path / "deep" / "dir" / "f.csv")
        assert path.exists()

    def test_export_all(self, tmp_path):
        paths = export_all([_figure("a"), _figure("b")], tmp_path)
        assert [p.name for p in paths] == ["a.csv", "b.csv"]

    def test_read_garbage_rejected(self, tmp_path):
        empty = tmp_path / "bad.csv"
        empty.write_text("justonerow\n")
        with pytest.raises(ReproError):
            read_csv(empty)
