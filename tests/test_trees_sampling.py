"""Tests for row/feature subsampling in the boosting driver."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.trees import BoostingParams, train_boosted_trees


def _data(n=1200, f=10, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, f))
    y = X[:, 0] * 2 + np.where(X[:, 1] > 5, 3.0, 0.0)
    return X, y


class TestBagging:
    def test_bagging_still_learns(self):
        X, y = _data()
        model = train_boosted_trees(X, y, BoostingParams(
            n_rounds=40, objective="l2", bagging_fraction=0.5))
        mae = float(np.mean(np.abs(model.predict(X) - y)))
        assert mae < 0.5 * float(np.std(y))

    def test_bagging_changes_model(self):
        X, y = _data()
        full = train_boosted_trees(X, y, BoostingParams(
            n_rounds=10, objective="l2"))
        bagged = train_boosted_trees(X, y, BoostingParams(
            n_rounds=10, objective="l2", bagging_fraction=0.5))
        assert not np.allclose(full.predict(X[:50]), bagged.predict(X[:50]))

    def test_invalid_fraction(self):
        with pytest.raises(TrainingError):
            BoostingParams(bagging_fraction=0.0).validate()
        with pytest.raises(TrainingError):
            BoostingParams(bagging_fraction=1.5).validate()


class TestFeatureFraction:
    def test_feature_fraction_still_learns(self):
        X, y = _data()
        model = train_boosted_trees(X, y, BoostingParams(
            n_rounds=60, objective="l2", feature_fraction=0.4))
        mae = float(np.mean(np.abs(model.predict(X) - y)))
        assert mae < 0.6 * float(np.std(y))

    def test_feature_fraction_spreads_splits(self):
        """Subsampled features force splits onto secondary features."""
        X, y = _data()
        full = train_boosted_trees(X, y, BoostingParams(
            n_rounds=30, objective="l2"))
        subsampled = train_boosted_trees(X, y, BoostingParams(
            n_rounds=30, objective="l2", feature_fraction=0.3))
        used_full = int((full.feature_importances() > 0).sum())
        used_sub = int((subsampled.feature_importances() > 0).sum())
        assert used_sub >= used_full

    def test_invalid_fraction(self):
        with pytest.raises(TrainingError):
            BoostingParams(feature_fraction=0.0).validate()


class TestValidationSplit:
    def test_validation_curve_recorded(self):
        X, y = _data()
        model = train_boosted_trees(X, y, BoostingParams(
            n_rounds=15, objective="l2", validation_fraction=0.25))
        assert len(model.valid_loss_curve) == model.n_trees
        assert len(model.train_loss_curve) == model.n_trees

    def test_no_validation_when_disabled(self):
        X, y = _data()
        model = train_boosted_trees(X, y, BoostingParams(
            n_rounds=5, objective="l2", validation_fraction=0.0))
        assert model.valid_loss_curve == []
