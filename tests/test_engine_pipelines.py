"""Tests for pipeline decomposition and stage flows."""

import pytest

from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.expressions import (
    Aggregate,
    AggregateFunction,
    ComparisonOp,
    ComparisonPredicate,
)
from repro.engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalScan,
    LogicalSort,
    LogicalTopK,
    LogicalUnion,
)
from repro.engine.optimizer import Optimizer, OptimizerConfig
from repro.engine.pipelines import (
    compute_stage_flows,
    decompose_into_pipelines,
    pipeline_input_cardinality,
)
from repro.engine.stages import OperatorType, Stage, all_operator_stage_pairs


@pytest.fixture
def optimizer(toy_instance):
    return Optimizer(toy_instance.schema, toy_instance.catalog,
                     OptimizerConfig(enable_small_table_elimination=False,
                                     enable_index_nl_join=False))


@pytest.fixture
def exact(toy_instance):
    return ExactCardinalityModel(toy_instance.catalog)


def _join_groupby_plan(schema):
    edge = schema.edge_between("customer", "orders")
    return LogicalGroupBy(
        LogicalJoin(
            LogicalScan("customer", [ComparisonPredicate(
                "customer", "c_nation", ComparisonOp.LE, 5)]),
            LogicalScan("orders"),
            edge),
        [("customer", "c_nation")],
        [Aggregate(AggregateFunction.COUNT)])


class TestDecomposition:
    def test_scan_only_is_one_pipeline(self, optimizer):
        plan = optimizer.optimize(LogicalScan("orders"))
        pipelines = decompose_into_pipelines(plan)
        assert len(pipelines) == 1
        assert pipelines[0].stages[0].stage is Stage.SCAN

    def test_join_groupby_pipeline_count(self, optimizer, toy_instance):
        logical = _join_groupby_plan(toy_instance.schema)
        plan = optimizer.optimize(logical)
        pipelines = decompose_into_pipelines(plan)
        # build side, probe side (ends in group build), group scan
        assert len(pipelines) == 3

    def test_pipelines_start_with_scan(self, optimizer, toy_workload):
        for query in toy_workload:
            for pipeline in decompose_into_pipelines(query.plan):
                assert pipeline.stages[0].stage is Stage.SCAN

    def test_builds_terminate_pipelines(self, toy_workload):
        for query in toy_workload:
            for pipeline in decompose_into_pipelines(query.plan):
                for ref in pipeline.stages[:-1]:
                    assert ref.stage is not Stage.BUILD

    def test_each_stage_appears_exactly_once(self, toy_workload):
        """Every operator stage of the plan occurs in exactly one pipeline."""
        for query in toy_workload:
            seen = {}
            for pipeline in decompose_into_pipelines(query.plan):
                for ref in pipeline.stages:
                    key = (id(ref.operator), ref.stage)
                    seen[key] = seen.get(key, 0) + 1
            assert all(count == 1 for count in seen.values())

    def test_dependencies_come_first(self, toy_workload):
        """A materializing op's BUILD pipeline precedes its SCAN/PROBE."""
        for query in toy_workload:
            built = set()
            for pipeline in decompose_into_pipelines(query.plan):
                for ref in pipeline.stages:
                    if ref.stage in (Stage.PROBE,):
                        assert id(ref.operator) in built
                    if (ref.stage is Stage.SCAN
                            and ref.operator.op_type
                            is not OperatorType.TABLE_SCAN):
                        assert id(ref.operator) in built
                for ref in pipeline.stages:
                    if ref.stage is Stage.BUILD:
                        built.add(id(ref.operator))

    def test_union_produces_three_pipelines(self, optimizer):
        logical = LogicalUnion(LogicalScan("orders"), LogicalScan("orders"))
        plan = optimizer.optimize(logical)
        pipelines = decompose_into_pipelines(plan)
        assert len(pipelines) == 3  # two builds + scan

    def test_label_rendering(self, optimizer):
        plan = optimizer.optimize(LogicalScan("orders"))
        pipeline = decompose_into_pipelines(plan)[0]
        assert pipeline.label() == "TableScan_Scan"


class TestStageFlows:
    def test_tablescan_flow(self, optimizer, exact, toy_instance):
        logical = LogicalScan("orders", [ComparisonPredicate(
            "orders", "o_total", ComparisonOp.LE, 5000)])
        plan = optimizer.optimize(logical)
        pipeline = decompose_into_pipelines(plan)[0]
        flows = compute_stage_flows(pipeline, exact)
        n_orders = toy_instance.catalog.row_count("orders")
        assert flows[0].tuples_in == n_orders
        assert flows[0].tuples_out == pytest.approx(n_orders / 2, rel=0.01)
        assert pipeline_input_cardinality(pipeline, exact) == n_orders

    def test_flow_conservation(self, exact, toy_workload, toy_instance):
        """Tuples flowing into a stage equal the previous stage's output."""
        model = ExactCardinalityModel(toy_instance.catalog)
        for query in toy_workload:
            for pipeline in decompose_into_pipelines(query.plan):
                flows = compute_stage_flows(pipeline, model)
                for previous, current in zip(flows, flows[1:]):
                    assert current.tuples_in == pytest.approx(
                        previous.tuples_out)

    def test_limit_caps_flow(self, optimizer, exact):
        logical = LogicalLimit(
            LogicalSort(LogicalScan("orders"), [("orders", "o_total")]), 10)
        plan = optimizer.optimize(logical)
        pipelines = decompose_into_pipelines(plan)
        final = compute_stage_flows(pipelines[-1], exact)
        assert final[-1].tuples_out <= 10

    def test_topk_materializes_k(self, optimizer, exact):
        logical = LogicalTopK(LogicalScan("orders"), [("orders", "o_total")],
                              k=25)
        plan = optimizer.optimize(logical)
        pipelines = decompose_into_pipelines(plan)
        build_flow = compute_stage_flows(pipelines[0], exact)[-1]
        assert build_flow.ref.stage is Stage.BUILD
        assert build_flow.materialized_cardinality == 25


class TestStageInventory:
    def test_19_operators(self):
        assert len(OperatorType) == 19

    def test_32_operator_stages(self):
        # The paper's Umbra implementation has 28 stages over its 19
        # operators; this engine's operator mix yields 32.
        assert len(all_operator_stage_pairs()) == 32
