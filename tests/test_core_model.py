"""Tests for the T3 model: training, prediction, persistence, ablations."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.trees.boosting import BoostingParams
from repro.core.ablation import TargetMode
from repro.core.dataset import CardinalityKind, build_dataset, cardinality_model_for
from repro.core.model import PredictionBackend, T3Config, T3Model
from repro.engine.cardinality import ExactCardinalityModel


def _fast_config(**kwargs) -> T3Config:
    defaults = dict(
        boosting=BoostingParams(n_rounds=30, objective="mape",
                                validation_fraction=0.2),
        compile_to_native=True)
    defaults.update(kwargs)
    return T3Config(**defaults)


@pytest.fixture(scope="module")
def toy_model(request):
    workload = request.getfixturevalue("toy_workload")
    return T3Model.train(workload, _fast_config())


@pytest.fixture(scope="module")
def toy_workload():
    from tests.conftest import build_toy_instance
    from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
    config = WorkloadConfig(queries_per_structure=3,
                            include_fixed_benchmarks=False)
    return WorkloadBuilder(build_toy_instance(), config).build()


@pytest.fixture(scope="module")
def exact_model(toy_workload):
    return ExactCardinalityModel(toy_workload[0].catalog)


class TestTraining:
    def test_trains_and_fits_training_set(self, toy_model, toy_workload):
        summary = toy_model.evaluate(toy_workload)
        assert summary.p50 < 2.0
        assert summary.count == len(toy_workload)

    def test_compiled_by_default(self, toy_model):
        assert toy_model.is_compiled
        assert toy_model.backend is PredictionBackend.COMPILED

    def test_reproducible(self, toy_workload):
        a = T3Model.train(toy_workload, _fast_config(compile_to_native=False))
        b = T3Model.train(toy_workload, _fast_config(compile_to_native=False))
        dataset = build_dataset(toy_workload)
        assert np.allclose(a.predict_dataset(dataset),
                           b.predict_dataset(dataset))


class TestPrediction:
    def test_query_prediction_is_pipeline_sum(self, toy_model, toy_workload,
                                              exact_model):
        query = toy_workload[0]
        pipeline_times = toy_model.predict_pipeline_times(
            query.plan, exact_model)
        total = toy_model.predict_query(query.plan, exact_model)
        assert total == pytest.approx(pipeline_times.sum())
        assert len(pipeline_times) == query.n_pipelines

    def test_predictions_positive(self, toy_model, toy_workload, exact_model):
        for query in toy_workload[:20]:
            assert toy_model.predict_query(query.plan, exact_model) > 0

    def test_backends_agree(self, toy_model, toy_workload, exact_model):
        query = toy_workload[0]
        compiled = toy_model.predict_query(query.plan, exact_model)
        toy_model.use_backend(PredictionBackend.INTERPRETED)
        try:
            interpreted = toy_model.predict_query(query.plan, exact_model)
        finally:
            toy_model.use_backend(PredictionBackend.COMPILED)
        assert compiled == pytest.approx(interpreted, rel=1e-10)

    def test_batch_matches_single(self, toy_model, toy_workload, exact_model):
        dataset = build_dataset(toy_workload[:10])
        batch = toy_model.predict_dataset(dataset)
        singles = [toy_model.predict_query(q.plan, exact_model)
                   for q in toy_workload[:10]]
        assert np.allclose(batch, singles, rtol=1e-9)

    def test_predict_benchmarked(self, toy_model, toy_workload):
        value = toy_model.predict_benchmarked(toy_workload[0])
        assert value > 0


class TestAblationModes:
    def test_per_pipeline_mode(self, toy_workload, exact_model):
        model = T3Model.train(toy_workload, _fast_config(
            target_mode=TargetMode.PER_PIPELINE, compile_to_native=False))
        query = toy_workload[0]
        times = model.predict_pipeline_times(query.plan, exact_model)
        assert len(times) == query.n_pipelines
        assert (times > 0).all()

    def test_per_query_mode(self, toy_workload, exact_model):
        model = T3Model.train(toy_workload, _fast_config(
            target_mode=TargetMode.PER_QUERY, compile_to_native=False))
        query = toy_workload[0]
        assert model.predict_query(query.plan, exact_model) > 0
        with pytest.raises(TrainingError):
            model.predict_pipeline_times(query.plan, exact_model)

    def test_per_tuple_beats_per_query_on_scale_generalization(
            self, toy_workload):
        """The core claim of Figure 13, on the toy workload."""
        per_tuple = T3Model.train(toy_workload, _fast_config(
            compile_to_native=False))
        per_query = T3Model.train(toy_workload, _fast_config(
            target_mode=TargetMode.PER_QUERY, compile_to_native=False))
        tuple_error = per_tuple.evaluate(toy_workload)
        query_error = per_query.evaluate(toy_workload)
        assert tuple_error.mean <= query_error.mean * 1.5


class TestPersistence:
    def test_save_load_roundtrip(self, toy_model, toy_workload, tmp_path):
        path = tmp_path / "model.json"
        toy_model.save(path)
        loaded = T3Model.load(path, compile_to_native=False)
        dataset = build_dataset(toy_workload[:5])
        assert np.allclose(toy_model.predict_dataset(dataset),
                           loaded.predict_dataset(dataset), rtol=1e-9)
        assert loaded.config.target_mode is toy_model.config.target_mode

    def test_close_releases_compiled(self, toy_workload):
        model = T3Model.train(toy_workload[:8], _fast_config())
        model.close()  # must not raise


class TestEvaluationRegimes:
    def test_estimated_cardinalities_degrade(self, toy_model, toy_workload):
        exact = toy_model.evaluate(toy_workload, kind=CardinalityKind.EXACT)
        estimated = toy_model.evaluate(toy_workload,
                                       kind=CardinalityKind.ESTIMATED)
        assert estimated.mean >= exact.mean * 0.9

    def test_distortion_degrades_monotonically(self, toy_model, toy_workload):
        errors = [toy_model.evaluate(toy_workload, distortion=d).p50
                  for d in (1.0, 10.0, 100.0)]
        assert errors[-1] > errors[0]
