"""Tests for the repro-t3 command-line interface."""

import json

import pytest

from repro.cli import main


class TestInstances:
    def test_lists_corpus(self, capsys):
        assert main(["instances"]) == 0
        out = capsys.readouterr().out
        assert "tpch_sf1" in out and "imdb" in out
        assert len(out.strip().splitlines()) == 22  # header + 21


class TestWorkloadTrainEvaluatePredict:
    @pytest.fixture(scope="class")
    def workload_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "workload.pkl"
        code = main(["workload", "--instances", "financial,hepatitis",
                     "--queries-per-structure", "2",
                     "--no-fixed-benchmarks", "-o", str(path)])
        assert code == 0
        return path

    @pytest.fixture(scope="class")
    def model_path(self, workload_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-model") / "model.json"
        code = main(["train", "-w", str(workload_path), "-o", str(path),
                     "--rounds", "20", "--no-compile"])
        assert code == 0
        return path

    def test_workload_file_loads(self, workload_path):
        import pickle
        with open(workload_path, "rb") as handle:
            queries = pickle.load(handle)
        assert len(queries) == 2 * 16 * 2  # structures x per x instances

    def test_train_writes_model(self, model_path, capsys):
        payload = json.loads(model_path.read_text())
        assert payload["model"]["format"] == "repro-gbdt"

    def test_evaluate(self, model_path, workload_path, capsys):
        assert main(["evaluate", "-m", str(model_path),
                     "-w", str(workload_path)]) == 0
        out = capsys.readouterr().out
        assert "q-error" in out and "p50=" in out

    def test_predict_sql(self, model_path, capsys):
        code = main(["predict", "-m", str(model_path), "-i", "tpch_sf1",
                     "SELECT count(*) FROM lineitem "
                     "WHERE l_quantity <= 10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted query time" in out

    def test_missing_workload_errors(self, tmp_path):
        code = main(["train", "-w", str(tmp_path / "nope.pkl"),
                     "-o", str(tmp_path / "m.json")])
        assert code == 1 or code is None


class TestExplain:
    def test_explain_plan_and_pipelines(self, capsys):
        code = main(["explain", "-i", "tpch_sf1",
                     "SELECT o_orderpriority, count(*) FROM orders, lineitem "
                     "WHERE o_orderkey = l_orderkey AND o_totalprice <= 1000 "
                     "GROUP BY o_orderpriority"])
        assert code == 0
        out = capsys.readouterr().out
        assert "HashJoin" in out
        assert "Pipeline" in out

    def test_explain_with_features(self, capsys):
        code = main(["explain", "-i", "tpch_sf1", "--features",
                     "SELECT count(*) FROM region"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TableScan_Scan_count" in out

    def test_bad_sql_reports_error(self, capsys):
        code = main(["explain", "-i", "tpch_sf1", "SELECT FROM"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
