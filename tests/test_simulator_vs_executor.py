"""Calibration: the analytic simulator must rank plans like real execution.

The simulator substitutes for measuring on real hardware. Its absolute
constants model a compiled C++ engine (not numpy), so we validate the
*shape*: across a diverse workload executed for real, simulated and
measured times must correlate strongly in rank, and relative pipeline
weights within a query must roughly agree.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.engine.executor import VectorizedExecutor
from repro.engine.simulator import ExecutionSimulator
from repro.datagen.tablegen import generate_table_store
from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
from tests.conftest import build_toy_instance


@pytest.fixture(scope="module")
def calibration():
    instance = build_toy_instance(n_orders=200_000, n_customers=20_000,
                                  n_items=5_000)
    config = WorkloadConfig(queries_per_structure=4,
                            include_fixed_benchmarks=False)
    queries = WorkloadBuilder(instance, config).build()
    store = generate_table_store(instance, scale_fraction=1.0, seed=3)
    executor = VectorizedExecutor(store)
    simulated, measured = [], []
    for query in queries:
        try:
            result = executor.execute(query.plan)
        except Exception:
            continue
        simulated.append(query.expected_time)
        measured.append(result.total_time)
    return np.array(simulated), np.array(measured)


class TestCalibration:
    def test_rank_correlation(self, calibration):
        simulated, measured = calibration
        assert len(simulated) >= 40
        rho = scipy_stats.spearmanr(simulated, measured).statistic
        assert rho > 0.75

    def test_bucket_means_monotone(self, calibration):
        """Mean measured time grows across simulated-time quartiles.

        (A slope test would be unfair: the numpy executor has large
        fixed per-pipeline overheads a compiled engine does not, so only
        ordering is required of the simulator.)
        """
        simulated, measured = calibration
        order = np.argsort(simulated)
        buckets = np.array_split(measured[order], 4)
        means = [bucket.mean() for bucket in buckets]
        assert all(b > a for a, b in zip(means, means[1:]))

    def test_expensive_half_still_correlated(self, calibration):
        simulated, measured = calibration
        top = simulated >= np.median(simulated)
        rho = scipy_stats.spearmanr(simulated[top], measured[top]).statistic
        assert rho > 0.6
