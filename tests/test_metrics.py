"""Tests for q-error metrics and benchmark-deviation statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.metrics import (
    QErrorSummary,
    consistent_run_deviation,
    q_error,
    q_errors,
    summarize_predictions,
    summarize_q_errors,
)


class TestQError:
    def test_exact_prediction_is_one(self):
        assert q_error(1.5, 1.5) == 1.0

    def test_symmetry_of_over_and_underestimation(self):
        assert q_error(2.0, 1.0) == q_error(1.0, 2.0) == 2.0

    def test_zero_values_are_floored_not_infinite(self):
        assert np.isfinite(q_error(0.0, 1.0))
        assert q_error(0.0, 0.0) == 1.0

    def test_negative_values_rejected(self):
        with pytest.raises(ReproError):
            q_error(-1.0, 1.0)

    @given(st.floats(min_value=1e-9, max_value=1e6),
           st.floats(min_value=1e-9, max_value=1e6))
    def test_always_at_least_one(self, a, b):
        assert q_error(a, b) >= 1.0

    @given(st.floats(min_value=1e-9, max_value=1e6),
           st.floats(min_value=1e-9, max_value=1e6))
    def test_symmetric_property(self, a, b):
        assert q_error(a, b) == pytest.approx(q_error(b, a))


class TestVectorized:
    def test_matches_scalar(self):
        predicted = [1.0, 2.0, 0.5]
        actual = [1.0, 1.0, 1.0]
        expected = [q_error(p, a) for p, a in zip(predicted, actual)]
        assert np.allclose(q_errors(predicted, actual), expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ReproError):
            q_errors([1.0, 2.0], [1.0])


class TestSummary:
    def test_percentiles_ordered(self):
        errors = np.linspace(1.0, 10.0, 100)
        summary = summarize_q_errors(errors)
        assert summary.p50 <= summary.p90
        assert summary.count == 100

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize_q_errors([])

    def test_summarize_predictions(self):
        summary = summarize_predictions([1.0, 2.0], [1.0, 1.0])
        assert summary.p90 <= 2.0
        assert summary.mean == pytest.approx(1.5)

    def test_row_rendering(self):
        summary = QErrorSummary(1.1, 2.2, 1.5, 7)
        row = summary.row()
        assert "1.10" in row and "n=7" in row


class TestConsistentRunDeviation:
    def test_identical_runs_have_no_deviation(self):
        assert consistent_run_deviation([1.0] * 10) == 1.0

    def test_outliers_are_dropped(self):
        # 9 consistent runs plus one wild outlier: the kept 2/3 exclude it.
        runs = [1.0] * 9 + [100.0]
        assert consistent_run_deviation(runs) == pytest.approx(1.0)

    def test_moderate_noise_reported(self):
        runs = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.0, 1.0, 1.0]
        deviation = consistent_run_deviation(runs)
        assert 1.0 < deviation < 1.1

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            consistent_run_deviation([])

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e3),
                    min_size=1, max_size=30))
    def test_at_least_one(self, runs):
        assert consistent_run_deviation(runs) >= 1.0
