"""Tests for operators the optimizer does not emit by default.

CrossProduct, BNLJoin, Materialize, and AssertSingle exist for plan
completeness (forced plans, future optimizer rules); these tests build
physical plans manually and exercise them through the executor, the
simulator, pipeline decomposition, and the feature registry.
"""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.executor import TableStore, VectorizedExecutor
from repro.engine.physical import (
    PAssertSingle,
    PBNLJoin,
    PCrossProduct,
    PMaterialize,
    PhysicalPlan,
    PLimit,
    PSimpleAgg,
    PTableScan,
)
from repro.engine.pipelines import decompose_into_pipelines
from repro.engine.simulator import ExecutionSimulator
from repro.engine.stages import OperatorType, Stage
from repro.engine.expressions import Aggregate, AggregateFunction
from repro.core.features import default_registry
from repro.datagen.tablegen import generate_table_store


@pytest.fixture(scope="module")
def toy():
    from tests.conftest import build_toy_instance
    return build_toy_instance(n_orders=2_000, n_customers=500, n_items=100)


@pytest.fixture(scope="module")
def store(toy):
    return generate_table_store(toy, scale_fraction=1.0, seed=9,
                                small_table_floor=1)


def _scan(toy, table, columns=None):
    schema = toy.schema.table(table)
    names = columns or schema.column_names
    cols = [(table, c) for c in names]
    width = sum(schema.column(c).byte_width for c in names)
    return PTableScan(table, [], 1.0, cols, width, width)


class TestCrossProduct:
    def _plan(self, toy):
        left = _scan(toy, "item", ["i_id"])
        right = _scan(toy, "customer", ["c_id"])
        cross = PCrossProduct(left, right,
                              left.output_columns + right.output_columns,
                              left.output_byte_width + right.output_byte_width)
        return PhysicalPlan(PLimit(cross, 10_000_000), toy.schema.name,
                            "cross")

    def test_cardinality_is_product(self, toy):
        plan = self._plan(toy)
        exact = ExactCardinalityModel(toy.catalog)
        cross = plan.root.children[0]
        assert exact.output_cardinality(cross) == pytest.approx(
            toy.catalog.row_count("item") * toy.catalog.row_count("customer"))

    def test_executes(self, toy, store):
        plan = self._plan(toy)
        result = VectorizedExecutor(store).execute(plan)
        assert result.n_result_rows == (store.row_count("item")
                                        * store.row_count("customer"))

    def test_simulator_quadratic_cost(self, toy):
        plan = self._plan(toy)
        simulator = ExecutionSimulator(toy.catalog)
        time = simulator.query_time(plan)
        # At least nested_loop_pair cost per output pair.
        pairs = (toy.catalog.row_count("item")
                 * toy.catalog.row_count("customer"))
        assert time > pairs * simulator.config.nested_loop_pair * 0.5

    def test_pipelines_and_features(self, toy):
        plan = self._plan(toy)
        pipelines = decompose_into_pipelines(plan)
        labels = [ref.label() for p in pipelines for ref in p.stages]
        assert "CrossProduct_Build" in labels
        assert "CrossProduct_Probe" in labels
        registry = default_registry()
        exact = ExactCardinalityModel(toy.catalog)
        vectors, _ = registry.vectors_for_plan(plan, exact)
        assert np.isfinite(vectors).all()

    def test_size_guard(self, toy):
        plan = self._plan(toy)
        executor = VectorizedExecutor(TableStore())
        executor.max_intermediate_rows = 10
        store_small = TableStore()
        store_small.put_table("item", {"i_id": np.arange(50)})
        store_small.put_table("customer", {"c_id": np.arange(50)})
        executor.store = store_small
        with pytest.raises(PlanError):
            executor.execute(plan)


class TestBNLJoin:
    def _plan(self, toy):
        build = _scan(toy, "customer", ["c_id"])
        probe = _scan(toy, "orders", ["o_id", "o_cust"])
        join = PBNLJoin(build, probe, ("customer", "c_id"),
                        ("orders", "o_cust"), 1.0,
                        build.output_columns + probe.output_columns,
                        build.output_byte_width + probe.output_byte_width,
                        stored_byte_width=build.output_byte_width)
        return PhysicalPlan(join, toy.schema.name, "bnl")

    def test_equijoin_semantics(self, toy, store):
        plan = self._plan(toy)
        result = VectorizedExecutor(store).execute(plan)
        # Every order matches exactly one customer.
        assert result.n_result_rows == store.row_count("orders")

    def test_simulator_charges_pairwise(self, toy):
        plan = self._plan(toy)
        simulator = ExecutionSimulator(toy.catalog)
        pairs = (toy.catalog.row_count("customer")
                 * toy.catalog.row_count("orders"))
        assert simulator.query_time(plan) > \
            pairs * simulator.config.nested_loop_pair * 0.5

    def test_stage_structure(self, toy):
        plan = self._plan(toy)
        stages = [ref.stage for p in decompose_into_pipelines(plan)
                  for ref in p.stages
                  if ref.operator.op_type is OperatorType.BNL_JOIN]
        assert set(stages) == {Stage.BUILD, Stage.PROBE}


class TestMaterializeAndAssertSingle:
    def test_materialize_roundtrip(self, toy, store):
        scan = _scan(toy, "item")
        plan = PhysicalPlan(PMaterialize(scan), toy.schema.name, "mat")
        result = VectorizedExecutor(store).execute(plan)
        assert result.n_result_rows == store.row_count("item")
        # Materialize adds a pipeline breaker.
        assert len(decompose_into_pipelines(plan)) == 2

    def test_assert_single_passes_one_row(self, toy, store):
        agg = PSimpleAgg(_scan(toy, "item"),
                         [Aggregate(AggregateFunction.COUNT)],
                         [("#computed", "agg_0")], 8)
        plan = PhysicalPlan(PAssertSingle(agg), toy.schema.name, "single")
        result = VectorizedExecutor(store).execute(plan)
        assert result.n_result_rows == 1

    def test_assert_single_rejects_many(self, toy, store):
        plan = PhysicalPlan(PAssertSingle(_scan(toy, "item")),
                            toy.schema.name, "single_bad")
        with pytest.raises(PlanError):
            VectorizedExecutor(store).execute(plan)

    def test_features_cover_exotic_stages(self, toy):
        registry = default_registry()
        for name in ("Materialize_Build_count", "Materialize_Scan_count",
                     "AssertSingle_PassThrough_count",
                     "CrossProduct_Probe_count", "BNLJoin_Build_count"):
            assert registry.index_of(name) >= 0
