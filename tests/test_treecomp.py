"""Tests for tree-to-native-code compilation and the interpreters."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.trees import BoostingParams, train_boosted_trees
from repro.trees.tree import Tree, TreeNode
from repro.trees.boosting import BoostedTreesModel
from repro.treecomp import (
    CompiledTreeModel,
    InterpretedModel,
    MultiThreadedInterpretedModel,
    PythonScalarModel,
    compile_model,
    find_c_compiler,
    generate_c_source,
)

HAVE_CC = find_c_compiler() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler available")


@pytest.fixture(scope="module")
def small_model() -> BoostedTreesModel:
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 10, size=(1500, 6))
    y = np.sin(X[:, 0]) + np.where(X[:, 1] > 5, 2.0, 0.0)
    return train_boosted_trees(X, y, BoostingParams(n_rounds=25))


@pytest.fixture(scope="module")
def compiled(small_model):
    if not HAVE_CC:
        pytest.skip("no C compiler")
    model = compile_model(small_model)
    yield model
    model.close()


class TestCodegen:
    def test_source_structure(self, small_model):
        source = generate_c_source(small_model, "m")
        assert "double m_predict(const double *f)" in source
        assert "m_predict_batch" in source
        assert source.count("static double tree_") == small_model.n_trees

    def test_one_return_per_leaf(self, small_model):
        source = generate_c_source(small_model)
        # lleaves contract: every leaf compiles to exactly one return;
        # plus the three exported functions' returns.
        n_leaves = small_model.n_leaves_total
        assert source.count("return") == n_leaves + 3

    def test_invalid_prefix_rejected(self, small_model):
        with pytest.raises(CompilationError):
            generate_c_source(small_model, "1bad prefix")

    def test_empty_model_rejected(self):
        empty = BoostedTreesModel([], 0.0, 4)
        with pytest.raises(CompilationError):
            generate_c_source(empty)

    def test_manual_tree_codegen(self):
        tree = Tree.from_nodes([
            TreeNode(feature=0, threshold=0.0, left=1, right=2),
            TreeNode(value=1.0), TreeNode(value=2.0)])
        model = BoostedTreesModel([tree], 0.5, 1)
        source = generate_c_source(model)
        assert "if (f[0] <= 0.0)" in source
        assert "0.5" in source


@needs_cc
class TestCompiledModel:
    def test_matches_interpreter_exactly(self, small_model, compiled):
        rng = np.random.default_rng(1)
        X = rng.uniform(-5, 15, size=(500, 6))
        assert np.allclose(compiled.predict(X), small_model.predict(X),
                           rtol=0, atol=1e-12)

    def test_single_matches_batch(self, compiled):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 10, size=(50, 6))
        singles = np.array([compiled.predict_one(x) for x in X])
        assert np.allclose(singles, compiled.predict(X))

    def test_wrong_feature_count_rejected(self, compiled):
        with pytest.raises(CompilationError):
            compiled.predict_one(np.zeros(3))
        with pytest.raises(CompilationError):
            compiled.predict(np.zeros((5, 3)))

    def test_non_contiguous_input_handled(self, compiled):
        X = np.asfortranarray(np.random.default_rng(3).uniform(size=(20, 6)))
        assert np.isfinite(compiled.predict(X)).all()

    def test_close_removes_workdir(self, small_model):
        model = compile_model(small_model)
        workdir = model._workdir
        assert workdir.exists()
        model.close()
        assert not workdir.exists()
        # Library stays loaded and usable after close.
        assert np.isfinite(model.predict_one(np.zeros(6)))

    def test_missing_compiler_error(self, small_model):
        with pytest.raises(CompilationError):
            compile_model(small_model, compiler="/nonexistent/cc")

    def test_compiled_is_faster_than_python_scalar(self, small_model, compiled):
        import time
        x = np.zeros(6)
        scalar = PythonScalarModel(small_model)
        t0 = time.perf_counter()
        for _ in range(300):
            compiled.predict_one(x)
        compiled_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(300):
            scalar.predict_one(x)
        python_time = time.perf_counter() - t0
        assert compiled_time < python_time


class TestInterpreters:
    def test_python_scalar_matches_numpy(self, small_model):
        X = np.random.default_rng(4).uniform(0, 10, size=(40, 6))
        scalar = PythonScalarModel(small_model).predict(X)
        vectorized = InterpretedModel(small_model).predict(X)
        assert np.allclose(scalar, vectorized)

    def test_multithreaded_matches_single(self, small_model):
        X = np.random.default_rng(5).uniform(0, 10, size=(700, 6))
        mt = MultiThreadedInterpretedModel(small_model, n_threads=4)
        try:
            assert np.allclose(mt.predict(X),
                               InterpretedModel(small_model).predict(X))
        finally:
            mt.close()

    def test_multithreaded_small_batch_shortcut(self, small_model):
        mt = MultiThreadedInterpretedModel(small_model, n_threads=2,
                                           min_chunk=64)
        X = np.random.default_rng(6).uniform(0, 10, size=(10, 6))
        assert len(mt.predict(X)) == 10
        mt.close()

    def test_1d_input(self, small_model):
        x = np.zeros(6)
        assert InterpretedModel(small_model).predict(x).shape == (1,)
        assert PythonScalarModel(small_model).predict(x).shape == (1,)
