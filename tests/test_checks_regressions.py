"""Regression tests for defects the static analyzers surfaced.

Each test pins a fix recorded in the PR: typed errors where untyped
ones leaked out, and schema validation on persisted models.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.features import FeatureRegistry
from repro.core.model import T3Config, T3Model
from repro.engine.stages import OperatorType, Stage
from repro.errors import ReproError, SchemaError
from repro.trees.boosting import BoostingParams


@pytest.fixture(scope="module")
def toy_model(toy_workload):
    config = T3Config(
        boosting=BoostingParams(n_rounds=10, objective="mape",
                                validation_fraction=0.2),
        compile_to_native=False)
    return T3Model.train(toy_workload, config)


def test_unknown_operator_stage_pair_raises_schema_error():
    registry = FeatureRegistry()
    # TABLE_SCAN only has a SCAN stage; BUILD is not a registered pair.
    flow = SimpleNamespace(ref=SimpleNamespace(
        operator=SimpleNamespace(op_type=OperatorType.TABLE_SCAN),
        stage=Stage.BUILD))
    vector = np.zeros(registry.n_features)
    with pytest.raises(SchemaError) as excinfo:
        registry._fill_stage(vector, flow, 1.0, model=None)
    assert "TableScan" in str(excinfo.value)
    assert isinstance(excinfo.value, ReproError)


def test_describe_vector_rejects_wrong_length():
    registry = FeatureRegistry()
    with pytest.raises(SchemaError):
        registry.describe_vector(np.zeros(registry.n_features + 1))


def test_model_save_records_feature_names(tmp_path, toy_model):
    path = tmp_path / "model.json"
    toy_model.save(path)
    payload = json.loads(path.read_text())
    assert payload["feature_names"] == toy_model.registry.feature_names()
    assert len(payload["feature_names"]) == toy_model.registry.n_features


def test_model_load_rejects_foreign_feature_layout(tmp_path, toy_model):
    path = tmp_path / "model.json"
    toy_model.save(path)
    payload = json.loads(path.read_text())
    payload["feature_names"] = payload["feature_names"][:-1] + ["intruder"]
    path.write_text(json.dumps(payload))
    with pytest.raises(SchemaError):
        T3Model.load(path, compile_to_native=False)


def test_model_load_accepts_legacy_files_without_names(tmp_path, toy_model):
    path = tmp_path / "model.json"
    toy_model.save(path)
    payload = json.loads(path.read_text())
    del payload["feature_names"]
    path.write_text(json.dumps(payload))
    loaded = T3Model.load(path, compile_to_native=False)
    assert loaded.booster.n_trees == toy_model.booster.n_trees
