"""End-to-end integration tests: the paper's headline claims in miniature.

These train small-but-real models across instances and check the
*qualitative* results the paper reports: zero-shot generalization,
ablation ordering (per-tuple > per-pipeline > per-query), compiled
latency, and cardinality-degradation behaviour.
"""

import time

import numpy as np
import pytest

from repro.metrics import summarize_predictions
from repro.trees.boosting import BoostingParams
from repro.core.ablation import TargetMode
from repro.core.dataset import CardinalityKind, build_dataset
from repro.core.model import T3Config, T3Model
from repro.datagen.workload import WorkloadConfig, build_corpus_workload
from repro.treecomp.compiler import find_c_compiler

TRAIN_INSTANCES = ["tpch_sf1", "financial", "airline", "ssb", "basketball"]
TEST_INSTANCES = ["tpcds_sf1"]


@pytest.fixture(scope="module")
def workloads():
    config = WorkloadConfig(queries_per_structure=3,
                            include_fixed_benchmarks=False)
    train = build_corpus_workload(TRAIN_INSTANCES, config)
    test = build_corpus_workload(TEST_INSTANCES, config)
    return train, test


def _config(**kwargs):
    defaults = dict(boosting=BoostingParams(n_rounds=60, objective="mape"))
    defaults.update(kwargs)
    return T3Config(**defaults)


@pytest.fixture(scope="module")
def t3(workloads):
    train, _ = workloads
    return T3Model.train(train, _config())


class TestZeroShotGeneralization:
    def test_accuracy_on_unseen_instance(self, t3, workloads):
        """Paper Table 4: test q-error moderately worse than train."""
        train, test = workloads
        train_error = t3.evaluate(train)
        test_error = t3.evaluate(test)
        assert train_error.p50 < 1.3
        assert test_error.p50 < 2.5
        assert test_error.p50 >= train_error.p50 * 0.8

    def test_predictions_correlate_with_truth(self, t3, workloads):
        _, test = workloads
        dataset = build_dataset(test)
        predicted = t3.predict_dataset(dataset)
        actual = dataset.query_times()
        correlation = np.corrcoef(np.log(predicted), np.log(actual))[0, 1]
        assert correlation > 0.9


class TestAblationOrdering:
    def test_figure13_ordering(self, workloads):
        """Per-tuple beats per-pipeline beats per-query (Figure 13)."""
        train, test = workloads
        errors = {}
        for mode in TargetMode:
            model = T3Model.train(train, _config(
                target_mode=mode, compile_to_native=False))
            errors[mode] = model.evaluate(test).p50
        assert errors[TargetMode.PER_TUPLE] <= errors[TargetMode.PER_PIPELINE]
        assert errors[TargetMode.PER_TUPLE] < errors[TargetMode.PER_QUERY]


@pytest.mark.skipif(find_c_compiler() is None, reason="no C compiler")
class TestLatencyClaims:
    def test_compiled_single_prediction_under_100us(self, t3, workloads):
        """Paper: ~4 us per model call. Allow two orders of slack for
        ctypes overhead and slow CI machines."""
        _, test = workloads
        dataset = build_dataset(test[:5])
        vector = np.ascontiguousarray(dataset.X[0])
        t3.predict_raw_one(vector)  # warm up
        start = time.perf_counter()
        n = 2000
        for _ in range(n):
            t3.predict_raw_one(vector)
        per_call = (time.perf_counter() - start) / n
        assert per_call < 100e-6

    def test_compiled_faster_than_interpreted(self, t3, workloads):
        from repro.core.model import PredictionBackend
        _, test = workloads
        dataset = build_dataset(test[:5])
        vector = np.ascontiguousarray(dataset.X[0])

        def timed(n=300):
            start = time.perf_counter()
            for _ in range(n):
                t3.predict_raw_one(vector)
            return time.perf_counter() - start

        compiled_time = timed()
        t3.use_backend(PredictionBackend.INTERPRETED)
        try:
            interpreted_time = timed()
        finally:
            t3.use_backend(PredictionBackend.COMPILED)
        assert compiled_time * 3 < interpreted_time


class TestCardinalityDegradation:
    def test_figure12_monotone_degradation(self, t3, workloads):
        _, test = workloads
        p50s = [t3.evaluate(test, distortion=d, seed=1).p50
                for d in (1.0, 10.0, 100.0, 1000.0)]
        assert p50s[0] < p50s[2]
        assert p50s[1] < p50s[3]

    def test_figure11_estimated_worse_than_exact(self, t3, workloads):
        """Directionally: estimated cardinalities should not *improve*
        accuracy (small-sample tolerance on the mean)."""
        _, test = workloads
        exact = t3.evaluate(test, kind=CardinalityKind.EXACT)
        estimated = t3.evaluate(test, kind=CardinalityKind.ESTIMATED)
        assert estimated.mean >= exact.mean * 0.8


class TestBenchmarkNoiseFloor:
    def test_model_error_not_below_measurement_noise(self, t3, workloads):
        """No model should beat the run-to-run measurement variation."""
        from repro.metrics import consistent_run_deviation
        train, _ = workloads
        noise_floor = np.median([
            consistent_run_deviation(q.execution.run_times) for q in train])
        assert t3.evaluate(train).p50 >= noise_floor * 0.8
