"""Chaos suite: deterministic fault injection, breakers, degradation.

Every test here runs under a wall-clock hang detector (faulthandler
dumps all stacks and aborts the process if a test wedges), because the
subject under test is precisely "nothing ever blocks forever".
"""

import faulthandler
import json
import os
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    InjectedFaultError,
    LoadShedError,
    RequestTimeoutError,
    ServiceClosedError,
)
from repro.core.model import PredictionBackend, T3Config, T3Model
from repro.datagen.workload import WorkloadConfig, build_corpus_workload
from repro.faults import (
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HealthState,
    HealthTracker,
    KNOWN_SITES,
    clear_faults,
    install_plan,
)
from repro.parallel import build_corpus_workload_parallel, process_map
from repro.serving import (
    AnalyticBaseline,
    MicroBatcher,
    ModelRegistry,
    PredictionService,
    ServingConfig,
    ServingServer,
)
from repro.trees.boosting import BoostingParams

#: Per-test wall-clock cap. A chaos test that runs this long has hung.
_HANG_CAP_S = 120


@pytest.fixture(autouse=True)
def _hang_detector():
    faulthandler.dump_traceback_later(_HANG_CAP_S, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture(autouse=True)
def _clean_global_faults():
    clear_faults()
    yield
    clear_faults()


# ---------------------------------------------------------------------------
# Shared fixtures (mirrors test_serving: one small model over the toy
# instance)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def toy_instance():
    from tests.conftest import build_toy_instance
    return build_toy_instance()


@pytest.fixture(scope="module")
def toy_model(toy_instance):
    from repro.datagen.workload import WorkloadBuilder
    workload = WorkloadBuilder(
        toy_instance, WorkloadConfig(queries_per_structure=2,
                                     include_fixed_benchmarks=False)).build()
    return T3Model.train(workload, T3Config(
        boosting=BoostingParams(n_rounds=15, objective="mape",
                                validation_fraction=0.2),
        compile_to_native=True))


@pytest.fixture()
def resolver(toy_instance):
    from repro.errors import SchemaError

    def resolve(name):
        if name == "toy":
            return toy_instance
        raise SchemaError(f"unknown instance {name!r}")
    return resolve


@pytest.fixture()
def _restore_backend(toy_model):
    """Chaos at registry.compile downgrades the shared model; undo."""
    yield
    if toy_model.is_compiled:
        toy_model.use_backend(PredictionBackend.COMPILED)


def make_service(toy_model, resolver, plan=None, **config_kwargs):
    injector = FaultInjector(plan)
    registry = ModelRegistry(injector=injector)
    registry.register(toy_model, "toy-model")
    config = ServingConfig(plan_cache_size=16, batch_wait_s=0.001,
                           **config_kwargs)
    return PredictionService(registry, config, instance_resolver=resolver,
                             injector=injector)


SQL = "SELECT count(*) FROM orders WHERE o_total <= 500"


# ---------------------------------------------------------------------------
# FaultPlan / FaultSpec
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_full_syntax(self):
        plan = FaultPlan.parse(
            "batcher.evaluate:raise:0.5;cache.read:corrupt;"
            "http.handler:delay:1:3", seed=7)
        assert plan.seed == 7
        assert plan.specs[0] == FaultSpec("batcher.evaluate", "raise", 0.5)
        assert plan.specs[1].action == "corrupt"
        assert plan.specs[2].max_fires == 3

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultPlan.parse("nonexistent.site:raise")

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            FaultPlan.parse("cache.read:explode")

    def test_malformed_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("cache.read")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("cache.read:raise:often")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("   ;  ")

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("cache.read", "raise", probability=1.5)

    def test_describe_round_trips_the_shape(self):
        plan = FaultPlan.parse("cache.read:raise:0.25:2")
        assert plan.describe() == ["cache.read:raise@0.25 x2"]


class TestFaultInjector:
    def test_no_plan_is_a_noop(self):
        injector = FaultInjector()
        injector.fire("batcher.evaluate")
        assert injector.corrupt("cache.read", 41, lambda v: v + 1) == 41
        assert injector.fire_counts() == {}

    def test_raise_and_counts(self):
        injector = FaultInjector(FaultPlan.parse("cache.read:raise"))
        with pytest.raises(InjectedFaultError):
            injector.fire("cache.read")
        injector.fire("batcher.evaluate")   # other sites untouched
        assert injector.fire_counts() == {"cache.read": 1}

    def test_corrupt_transforms_value(self):
        injector = FaultInjector(FaultPlan.parse("cache.read:corrupt"))
        assert injector.corrupt("cache.read", 1, lambda v: -v) == -1

    def test_max_fires_caps_the_spec(self):
        injector = FaultInjector(FaultPlan.parse("cache.read:raise:1:2"))
        fired = 0
        for _ in range(10):
            try:
                injector.fire("cache.read")
            except InjectedFaultError:
                fired += 1
        assert fired == 2

    def test_probabilistic_arming_is_deterministic(self):
        def decisions(seed):
            injector = FaultInjector(
                FaultPlan.parse("batcher.evaluate:raise:0.5", seed=seed))
            out = []
            for _ in range(40):
                try:
                    injector.fire("batcher.evaluate")
                    out.append(False)
                except InjectedFaultError:
                    out.append(True)
            return out

        first = decisions(seed=123)
        assert decisions(seed=123) == first          # bit-identical replay
        assert 5 < sum(first) < 35                   # actually probabilistic
        assert decisions(seed=124) != first          # seed matters

    def test_install_resets_counters(self):
        injector = FaultInjector(FaultPlan.parse("cache.read:raise:1:1"))
        with pytest.raises(InjectedFaultError):
            injector.fire("cache.read")
        injector.fire("cache.read")                  # cap reached
        injector.install(injector.plan)
        with pytest.raises(InjectedFaultError):
            injector.fire("cache.read")              # cap reset

    def test_global_install_and_clear(self):
        injector = install_plan(FaultPlan.parse("cache.read:raise"))
        assert injector.active
        clear_faults()
        assert not injector.active

    def test_known_sites_documented(self):
        assert set(KNOWN_SITES) == {
            "registry.compile", "batcher.evaluate", "cache.read",
            "parallel.worker", "http.handler", "lifecycle.log_append"}


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _breaker(clock, **kwargs):
    kwargs.setdefault("window", 10)
    kwargs.setdefault("min_samples", 4)
    kwargs.setdefault("failure_threshold", 0.5)
    kwargs.setdefault("backoff_base_s", 1.0)
    kwargs.setdefault("half_open_probes", 2)
    return CircuitBreaker("test", clock=clock, **kwargs)


class TestCircuitBreaker:
    def test_stays_closed_under_min_samples(self):
        breaker = _breaker(_FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_trips_on_failure_rate(self):
        breaker = _breaker(_FakeClock())
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_mixed_outcomes_below_threshold_stay_closed(self):
        breaker = _breaker(_FakeClock())
        for _ in range(7):
            breaker.record_success()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED   # 3/10 < 0.5

    def test_half_open_after_backoff_then_recloses(self):
        clock = _FakeClock()
        breaker = _breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now = 2.0   # past base backoff (1.0s * jitter < 1.25)
        assert breaker.allow()                        # probe 1 admitted
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()                        # probe 2 admitted
        assert not breaker.allow()                    # probes bounded
        breaker.record_success()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_aborted_probes_release_their_slots(self):
        # Regression: a probe shed on overload (queue full, deadline)
        # must return its half-open slot. Leaking both slots would pin
        # allow() at False forever with no probe left to transition.
        clock = _FakeClock()
        breaker = _breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()            # both slots taken
        breaker.record_aborted()
        breaker.record_aborted()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()                # slots released, not leaked
        breaker.record_success()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_aborted_is_noop_when_closed(self):
        breaker = _breaker(_FakeClock())
        breaker.record_aborted()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_longer_backoff(self):
        clock = _FakeClock()
        breaker = _breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        first = breaker.snapshot()["open_remaining_s"]
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.trips == 2
        second = breaker.snapshot()["open_remaining_s"]
        assert second > first    # exponential growth dominates jitter

    def test_backoff_timeline_is_deterministic(self):
        def timeline(seed):
            clock = _FakeClock()
            breaker = CircuitBreaker("entry@1", seed=seed, min_samples=2,
                                     failure_threshold=0.5, clock=clock)
            out = []
            for _ in range(3):
                breaker.record_failure()
                breaker.record_failure()
                out.append(breaker.snapshot()["open_remaining_s"])
                clock.now += 1000.0
                assert breaker.allow()   # half-open probe, then fail again
            return out

        assert timeline(seed=42) == timeline(seed=42)
        assert timeline(seed=42) != timeline(seed=43)

    def test_backoff_is_capped(self):
        clock = _FakeClock()
        breaker = CircuitBreaker("t", min_samples=1, failure_threshold=0.1,
                                 backoff_base_s=1.0, backoff_cap_s=4.0,
                                 clock=clock)
        for _ in range(12):
            breaker.record_failure()
            clock.now += 100.0
            breaker.allow()
        assert breaker.snapshot()["open_remaining_s"] <= 4.0 * 1.25


# ---------------------------------------------------------------------------
# Health tracker
# ---------------------------------------------------------------------------


class TestHealthTracker:
    def test_healthy_by_default(self):
        tracker = HealthTracker(clock=_FakeClock())
        assert tracker.state is HealthState.HEALTHY

    def test_fallback_event_lingers_then_clears(self):
        clock = _FakeClock()
        tracker = HealthTracker(degraded_linger_s=30.0, clock=clock)
        tracker.note_fallback("interpreted")
        assert tracker.state is HealthState.DEGRADED
        clock.now = 29.0
        assert tracker.state is HealthState.DEGRADED
        clock.now = 31.0
        assert tracker.state is HealthState.HEALTHY
        assert tracker.fallback_count == 1

    def test_probe_holds_degraded(self):
        flag = {"open": True}
        tracker = HealthTracker(clock=_FakeClock())
        tracker.add_probe("breaker", lambda: flag["open"])
        assert tracker.state is HealthState.DEGRADED
        assert tracker.degraded_probes() == ["breaker"]
        flag["open"] = False
        assert tracker.state is HealthState.HEALTHY

    def test_draining_is_terminal(self):
        tracker = HealthTracker(clock=_FakeClock())
        tracker.mark_draining()
        assert tracker.state is HealthState.DRAINING
        tracker.note_shed()
        assert tracker.state is HealthState.DRAINING
        assert tracker.describe()["shed_total"] == 1


# ---------------------------------------------------------------------------
# Analytic baseline (last rung)
# ---------------------------------------------------------------------------


class TestAnalyticBaseline:
    def test_finite_for_hostile_cards(self):
        baseline = AnalyticBaseline()
        cards = np.array([np.nan, np.inf, -np.inf, 0.0, 1e30])
        times = baseline.pipeline_times(np.zeros((5, 3)), cards)
        assert np.all(np.isfinite(times))
        assert np.all(times >= 0.0)

    def test_per_query_mode_without_cards(self):
        baseline = AnalyticBaseline()
        times = baseline.pipeline_times(np.zeros((1, 3)), None)
        assert times.shape == (1,)
        assert np.isfinite(times).all()

    def test_more_tuples_cost_more(self):
        baseline = AnalyticBaseline()
        small = baseline.total_time(np.zeros((1, 3)), np.array([10.0]))
        big = baseline.total_time(np.zeros((1, 3)), np.array([1e6]))
        assert big > small


# ---------------------------------------------------------------------------
# MicroBatcher robustness: close-drain, deadlines, shedding
# ---------------------------------------------------------------------------


def _echo_rows(X):
    return np.asarray(X)[:, 0].astype(np.float64)


class TestBatcherRobustness:
    def _blocked_batcher(self, release, entered, **kwargs):
        def predict(X):
            entered.set()
            release.wait(timeout=30)
            return _echo_rows(X)
        kwargs.setdefault("max_wait_s", 0.001)
        return MicroBatcher(predict, **kwargs).start()

    def test_close_drains_queued_requests(self):
        import threading
        release, entered = threading.Event(), threading.Event()
        batcher = self._blocked_batcher(release, entered)
        blocker = batcher.submit_async(np.ones((1, 2)))
        assert entered.wait(timeout=10)
        pending = [batcher.submit_async(np.ones((1, 2))) for _ in range(3)]
        batcher.close(timeout=0.1)
        for future in pending:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=10)
        assert batcher.stats().drained == 3
        release.set()   # the in-flight batch still completes
        assert blocker.result(timeout=10) is not None

    def test_submit_after_close_raises_typed(self):
        batcher = MicroBatcher(_echo_rows).start()
        batcher.close()
        with pytest.raises(ServiceClosedError):
            batcher.submit(np.ones((1, 2)))

    def test_pre_expired_deadline_is_shed(self):
        batcher = MicroBatcher(_echo_rows).start()
        try:
            with pytest.raises(DeadlineExceeded):
                batcher.submit(np.ones((1, 2)),
                               deadline=time.monotonic() - 1.0)
            assert batcher.stats().expired == 1
        finally:
            batcher.close()

    def test_deadline_expiring_in_queue_is_shed_not_evaluated(self):
        import threading
        release, entered = threading.Event(), threading.Event()
        batcher = self._blocked_batcher(release, entered)
        try:
            batcher.submit_async(np.ones((1, 2)))
            assert entered.wait(timeout=10)
            doomed = batcher.submit_async(
                np.ones((1, 2)), deadline=time.monotonic() + 0.05)
            time.sleep(0.1)
            release.set()
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=10)
            assert batcher.stats().expired == 1
        finally:
            batcher.close()

    def test_watermark_sheds_before_queue_full(self):
        import threading
        release, entered = threading.Event(), threading.Event()
        batcher = self._blocked_batcher(release, entered, queue_capacity=8,
                                        shed_watermark=2)
        try:
            batcher.submit_async(np.ones((1, 2)))
            assert entered.wait(timeout=10)
            batcher.submit_async(np.ones((1, 2)))
            batcher.submit_async(np.ones((1, 2)))
            with pytest.raises(LoadShedError):
                batcher.submit_async(np.ones((1, 2)))
            assert batcher.stats().shed == 1
        finally:
            release.set()
            batcher.close()

    def test_watermark_validated(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(_echo_rows, queue_capacity=4, shed_watermark=9)

    def test_submit_racing_close_fails_typed(self):
        # Regression: a submitter that passes the closed check just
        # before close() runs must not strand its request in a
        # worker-less queue — the post-put re-check drains it.
        batcher = MicroBatcher(_echo_rows).start()
        real_put = batcher._queue.put_nowait

        def racing_put(item):
            batcher.close(timeout=5.0)   # lands between check and put
            real_put(item)

        batcher._queue.put_nowait = racing_put
        future = batcher.submit_async(np.ones((1, 2)))
        assert isinstance(future.exception(timeout=10), ServiceClosedError)

    def test_submit_without_deadline_is_bounded(self):
        # Regression: timeout=None must not become an unbounded
        # future.result(None) — a wedged worker surfaces as a typed
        # timeout (RT002), never a hang.
        import threading
        release, entered = threading.Event(), threading.Event()
        batcher = self._blocked_batcher(release, entered)
        try:
            from repro.serving import batching
            original = batching._DEFAULT_RESULT_WAIT_S
            batching._DEFAULT_RESULT_WAIT_S = 0.2
            try:
                with pytest.raises(RequestTimeoutError):
                    batcher.submit(np.ones((1, 2)))
            finally:
                batching._DEFAULT_RESULT_WAIT_S = original
        finally:
            release.set()
            batcher.close()

    def test_zero_timeout_means_immediate_deadline(self):
        batcher = MicroBatcher(_echo_rows).start()
        try:
            with pytest.raises(DeadlineExceeded):
                batcher.submit(np.ones((1, 2)), timeout=0.0)
        finally:
            batcher.close()


# ---------------------------------------------------------------------------
# The degradation chain, chaos-parametrized over every service site
# ---------------------------------------------------------------------------


_SERVICE_SITE_PLANS = [
    pytest.param("registry.compile:raise", id="registry-compile"),
    pytest.param("batcher.evaluate:raise", id="batcher-raise"),
    pytest.param("batcher.evaluate:corrupt", id="batcher-corrupt"),
    pytest.param("cache.read:raise", id="cache-raise"),
    pytest.param("cache.read:corrupt", id="cache-corrupt"),
]


class TestDegradationChain:
    @pytest.mark.parametrize("spec", _SERVICE_SITE_PLANS)
    def test_every_site_still_answers_finite(self, toy_model, resolver,
                                             _restore_backend, spec):
        service = make_service(toy_model, resolver, FaultPlan.parse(spec))
        for _ in range(3):   # cold cache, warm cache, repeat
            result = service.predict(SQL, "toy")
            assert np.isfinite(result.predicted_seconds)
            assert result.predicted_seconds >= 0.0

    @pytest.mark.parametrize(
        "spec", ["batcher.evaluate:raise", "batcher.evaluate:corrupt"])
    def test_backend_faults_carry_degraded_provenance(
            self, toy_model, resolver, spec):
        service = make_service(toy_model, resolver, FaultPlan.parse(spec))
        result = service.predict(SQL, "toy")
        assert result.degraded is True
        assert result.fallback == "interpreted"
        assert result.to_json()["degraded"] is True
        payload = service.health()
        assert payload["status"] == "degraded"
        assert payload["degradation"]["fallback_total"] >= 1
        assert payload["faults"]["fired"]["batcher.evaluate"] >= 1

    def test_cache_faults_recover_without_degradation(self, toy_model,
                                                      resolver):
        service = make_service(toy_model, resolver,
                               FaultPlan.parse("cache.read:raise"))
        result = service.predict(SQL, "toy")
        assert result.degraded is False   # rebuild, not fallback
        assert np.isfinite(result.predicted_seconds)

    def test_registry_compile_fault_degrades_backend(self, toy_model,
                                                     resolver,
                                                     _restore_backend):
        service = make_service(toy_model, resolver,
                               FaultPlan.parse("registry.compile:raise"))
        entry = service.registry.get("toy-model")
        assert entry.backend == "interpreted"
        assert "injected" in entry.fallback_reason
        result = service.predict(SQL, "toy")
        assert np.isfinite(result.predicted_seconds)

    def test_analytic_rung_when_everything_fails(self, toy_model, resolver,
                                                 monkeypatch):
        service = make_service(toy_model, resolver,
                               FaultPlan.parse("batcher.evaluate:raise"))

        def broken(X):
            raise RuntimeError("interpreted walk is broken too")
        monkeypatch.setattr(toy_model.booster, "predict", broken)
        result = service.predict(SQL, "toy")
        assert result.degraded is True
        assert result.fallback == "analytic"
        assert np.isfinite(result.predicted_seconds)
        assert result.predicted_seconds >= 0.0

    def test_degraded_sequence_replays_bit_identically(self, toy_model,
                                                       resolver):
        def run():
            service = make_service(
                toy_model, resolver,
                FaultPlan.parse("batcher.evaluate:raise:1:3", seed=99))
            flags = []
            for _ in range(6):
                result = service.predict(SQL, "toy")
                flags.append((result.degraded, result.fallback))
            return flags

        first = run()
        assert first == [(True, "interpreted")] * 3 + [(False, None)] * 3
        assert run() == first

    def test_breaker_opens_under_sustained_failure(self, toy_model,
                                                   resolver):
        service = make_service(toy_model, resolver,
                               FaultPlan.parse("batcher.evaluate:raise"),
                               breaker_min_samples=3,
                               breaker_backoff_base_s=60.0)
        for _ in range(5):
            result = service.predict(SQL, "toy")
            assert result.degraded is True
        snapshots = service.health()["breakers"]
        assert snapshots[0]["state"] == "open"
        assert snapshots[0]["trips"] == 1
        # Open breaker: primary skipped outright, still answering.
        before = service.injector.fire_counts()["batcher.evaluate"]
        result = service.predict(SQL, "toy")
        assert result.degraded is True
        assert service.injector.fire_counts()["batcher.evaluate"] == before

    def test_expired_deadline_sheds_and_counts(self, toy_model, resolver):
        service = make_service(toy_model, resolver)
        service.predict(SQL, "toy")   # warm the plan cache
        with pytest.raises(DeadlineExceeded):
            service.predict(SQL, "toy", deadline=time.monotonic() - 0.001)
        payload = service.health()
        assert payload["degradation"]["shed_total"] == 1
        assert payload["status"] == "degraded"

    def test_closed_service_is_draining(self, toy_model, resolver):
        service = make_service(toy_model, resolver)
        service.predict(SQL, "toy")
        service._batchers.clear()   # keep the shared model's library alive
        service.registry._versions.clear()
        service.close()
        assert service.health()["status"] == "draining"
        with pytest.raises(ServiceClosedError):
            service.predict(SQL, "toy")


# ---------------------------------------------------------------------------
# HTTP error mapping (satellite: every status code, always an envelope)
# ---------------------------------------------------------------------------


def _post(url, body):
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(
        f"{url}/predict", data=data,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def server(toy_model, toy_instance):
    from repro.errors import SchemaError

    def resolve(name):
        if name == "toy":
            return toy_instance
        raise SchemaError(f"unknown instance {name!r}")

    registry = ModelRegistry()
    registry.register(toy_model, "toy-model")
    service = PredictionService(
        registry, ServingConfig(plan_cache_size=16, batch_wait_s=0.001),
        instance_resolver=resolve)
    srv = ServingServer(service, port=0).start()
    yield srv
    # Shut down the HTTP listener but keep the module-scoped model's
    # compiled library alive for the remaining tests.
    service._batchers.clear()
    service.registry._versions.clear()
    srv.shutdown()


class TestHTTPErrorMapping:
    def test_valid_request_includes_provenance(self, server):
        status, payload = _post(server.url, {"sql": SQL, "instance": "toy"})
        assert status == 200
        assert payload["degraded"] is False
        assert payload["fallback"] is None

    def test_malformed_json_is_400(self, server):
        status, payload = _post(server.url, b"{not json")
        assert status == 400
        assert payload["error"] == "invalid_json"

    def test_missing_fields_is_400(self, server):
        status, payload = _post(server.url, {"sql": 42})
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_unknown_model_is_404(self, server):
        status, payload = _post(server.url, {
            "sql": SQL, "instance": "toy", "model": "absent"})
        assert status == 404
        assert payload["error"] == "model_not_found"

    def test_unknown_instance_is_404(self, server):
        status, payload = _post(server.url, {
            "sql": SQL, "instance": "absent"})
        assert status == 404
        assert payload["error"] == "instance_not_found"

    def test_oversized_body_is_413(self, server):
        # The server rejects on the Content-Length header alone (it
        # never reads an oversized body), so advertise a huge length
        # without actually shipping a megabyte.
        import http.client
        host_port = server.url.removeprefix("http://")
        host, port = host_port.rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.putrequest("POST", "/predict")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str((1 << 20) + 1))
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 413
            assert payload["error"] == "payload_too_large"
        finally:
            conn.close()

    def test_empty_body_is_400(self, server):
        status, payload = _post(server.url, b"")
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_unknown_endpoint_is_404_envelope(self, server):
        try:
            with urllib.request.urlopen(f"{server.url}/nope",
                                        timeout=30) as response:
                status, payload = response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            status, payload = exc.code, json.loads(exc.read())
        assert status == 404
        assert payload["error"] == "not_found"

    def test_injected_handler_fault_is_clean_503(self, server):
        install_plan(FaultPlan.parse("http.handler:raise:1:1"))
        status, payload = _post(server.url, {"sql": SQL, "instance": "toy"})
        assert status == 503
        assert payload["error"] == "injected_fault"
        assert "Traceback" not in payload["message"]
        # The cap exhausted: the very next request succeeds.
        status, _ = _post(server.url, {"sql": SQL, "instance": "toy"})
        assert status == 200

    def test_error_before_body_read_closes_connection(self, server):
        # Regression: a keep-alive (HTTP/1.1) connection answered
        # before its body was read must close — otherwise the unread
        # body bytes get parsed as the next request line and every
        # later request on the connection is corrupted.
        import socket
        body = b'{"sql": "SELECT 1", "instance": "toy"}'
        request = (
            f"POST /nope HTTP/1.1\r\nHost: t\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode() + body
        with socket.create_connection((server.host, server.port),
                                      timeout=30) as sock:
            sock.sendall(request)
            data = b""
            while True:
                chunk = sock.recv(4096)   # EOF only if the server closes
                if not chunk:
                    break
                data += chunk
        assert b" 404 " in data.split(b"\r\n", 1)[0]
        assert b"connection: close" in data.lower()

    def test_body_read_errors_keep_connection_alive(self, server):
        # Counterpart: once the body IS consumed (invalid JSON), the
        # connection stays usable and the next request on it succeeds.
        import http.client
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        try:
            conn.request("POST", "/predict", b"{not json",
                         {"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            response.read()
            conn.request("POST", "/predict",
                         json.dumps({"sql": SQL, "instance": "toy"}),
                         {"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 200
            response.read()
        finally:
            conn.close()

    def test_healthz_reports_fault_plan(self, server):
        install_plan(FaultPlan.parse("http.handler:delay:1:0"))
        with urllib.request.urlopen(f"{server.url}/healthz",
                                    timeout=30) as response:
            payload = json.loads(response.read())
        assert payload["faults"]["active"] is True
        assert payload["faults"]["plan"] == ["http.handler:delay@1 x0"]


# ---------------------------------------------------------------------------
# Crash-safe process_map (satellite + tentpole #5)
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


def _die_once_then_square(task):
    index, marker_dir = task
    if index == 3:
        marker = os.path.join(marker_dir, "died-once")
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("x")
            os._exit(1)   # hard worker death: no exception, no cleanup
    return index * index


class TestCrashSafeProcessMap:
    def test_recovers_from_real_worker_death(self, tmp_path):
        tasks = [(i, str(tmp_path)) for i in range(8)]
        results = process_map(_die_once_then_square, tasks, jobs=2)
        assert results == [i * i for i in range(8)]
        assert (tmp_path / "died-once").exists()

    def test_injected_worker_fault_retries_to_identical_results(self):
        injector = FaultInjector(
            FaultPlan.parse("parallel.worker:raise:1:2"))
        results = process_map(_square, list(range(10)), jobs=4,
                              backoff_base_s=0.01, injector=injector)
        assert results == [i * i for i in range(10)]
        assert injector.fire_counts()["parallel.worker"] == 2

    def test_serial_fallback_after_repeated_pool_failure(self):
        injector = FaultInjector(FaultPlan.parse("parallel.worker:raise"))
        results = process_map(_square, list(range(6)), jobs=2,
                              max_pool_failures=2, backoff_base_s=0.01,
                              injector=injector)
        assert results == [i * i for i in range(6)]

    def test_task_exceptions_still_propagate(self):
        with pytest.raises(Exception):
            process_map(_raise_value_error, [1, 2, 3], jobs=2)

    def test_workload_bit_identical_under_worker_faults(self):
        config = WorkloadConfig(queries_per_structure=1,
                                include_fixed_benchmarks=False)
        serial = build_corpus_workload(["financial"], config)
        install_plan(FaultPlan.parse("parallel.worker:raise:1:2"))
        try:
            parallel = build_corpus_workload_parallel(
                ["financial"], config, jobs=4, chunk_size=1)
        finally:
            clear_faults()
        assert [q.name for q in serial] == [q.name for q in parallel]
        assert [q.median_time for q in serial] == \
            [q.median_time for q in parallel]
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.pipeline_targets(), b.pipeline_targets())


def _raise_value_error(x):
    raise ValueError(f"task {x} is unhappy")
