"""Tests for the rule-based optimizer."""

import pytest

from repro.engine.cardinality import EstimatedCardinalityModel, ExactCardinalityModel
from repro.engine.expressions import (
    Aggregate,
    AggregateFunction,
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    ComputedColumn,
    InListPredicate,
)
from repro.engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.engine.optimizer import COMPUTED, Optimizer, OptimizerConfig
from repro.engine.physical import (
    PGroupBy,
    PHashJoin,
    PMap,
    PSimpleAgg,
    PTableScan,
    PTopK,
)
from repro.datagen.instances import get_instance


@pytest.fixture
def optimizer(toy_instance):
    return Optimizer(toy_instance.schema, toy_instance.catalog)


def _edge(instance, left, right):
    return instance.schema.edge_between(left, right)


class TestScanLowering:
    def test_projection_pushdown_narrows_scan(self, optimizer, toy_instance):
        logical = LogicalProject(LogicalScan("orders"),
                                 [("orders", "o_total")])
        plan = optimizer.optimize(logical)
        scan = plan.root
        assert isinstance(scan, PTableScan)
        full_width = toy_instance.schema.table("orders").row_byte_width
        assert scan.scan_byte_width < full_width
        assert scan.output_columns == [("orders", "o_total")]

    def test_predicates_ordered_by_selectivity(self, optimizer):
        weak = ComparisonPredicate("orders", "o_total", ComparisonOp.LE, 9900)
        strong = ComparisonPredicate("orders", "o_total", ComparisonOp.LE, 100)
        plan = optimizer.optimize(LogicalScan("orders", [weak, strong]))
        assert plan.root.predicates[0] is strong

    def test_unprojected_scan_keeps_all_columns(self, optimizer,
                                                toy_instance):
        plan = optimizer.optimize(LogicalScan("orders"))
        assert len(plan.root.output_columns) == len(
            toy_instance.schema.table("orders").columns)


class TestJoins:
    def test_build_side_is_smaller_input(self, optimizer, toy_instance):
        logical = LogicalJoin(LogicalScan("orders"), LogicalScan("customer"),
                              _edge(toy_instance, "orders", "customer"))
        plan = optimizer.optimize(logical)
        join = plan.root
        assert isinstance(join, PHashJoin)
        estimator = EstimatedCardinalityModel(toy_instance.catalog)
        assert (estimator.output_cardinality(join.build_child)
                <= estimator.output_cardinality(join.probe_child))

    def test_small_table_elimination_creates_in_predicates(self):
        """The paper's TPC-H Q5 nation/region pattern (Listing 3)."""
        instance = get_instance("tpch_sf1")
        optimizer = Optimizer(instance.schema, instance.catalog)
        nation = LogicalScan("nation")
        customer = LogicalScan("customer")
        logical = LogicalJoin(customer, nation,
                              _edge(instance, "customer", "nation"))
        plan = optimizer.optimize(logical)
        scan = plan.root
        assert isinstance(scan, PTableScan)
        assert scan.table == "customer"
        kinds = {type(p) for p in scan.predicates}
        assert InListPredicate in kinds

    def test_filtered_small_table_restricts_keys(self):
        instance = get_instance("tpch_sf1")
        # Threshold of 10 rows: only region (5 rows) is eliminable.
        optimizer = Optimizer(instance.schema, instance.catalog,
                              OptimizerConfig(small_table_threshold=10))
        region = LogicalScan("region", [ComparisonPredicate(
            "region", "r_regionkey", ComparisonOp.LE, 1)])
        nation = LogicalScan("nation")
        logical = LogicalJoin(nation, region,
                              _edge(instance, "nation", "region"))
        plan = optimizer.optimize(logical)
        assert isinstance(plan.root, PTableScan)
        assert plan.root.table == "nation"
        in_predicates = [p for p in plan.root.predicates
                         if isinstance(p, InListPredicate)]
        assert in_predicates and len(in_predicates[0].values) <= 2

    def test_elimination_disabled_by_config(self):
        instance = get_instance("tpch_sf1")
        optimizer = Optimizer(instance.schema, instance.catalog,
                              OptimizerConfig(
                                  enable_small_table_elimination=False))
        logical = LogicalJoin(LogicalScan("customer"), LogicalScan("nation"),
                              _edge(instance, "customer", "nation"))
        plan = optimizer.optimize(logical)
        assert isinstance(plan.root, PHashJoin)

    def test_elimination_blocked_when_columns_needed(self):
        """nation.n_name used upstream: the join must survive."""
        instance = get_instance("tpch_sf1")
        optimizer = Optimizer(instance.schema, instance.catalog)
        logical = LogicalGroupBy(
            LogicalJoin(LogicalScan("customer"), LogicalScan("nation"),
                        _edge(instance, "customer", "nation")),
            [("nation", "n_name")],
            [Aggregate(AggregateFunction.COUNT)])
        plan = optimizer.optimize(logical)
        joins = [op for op in plan.root.walk() if isinstance(op, PHashJoin)]
        assert joins


class TestAggregationAndSort:
    def test_groupby_vs_simple_agg(self, optimizer):
        grouped = optimizer.optimize(LogicalGroupBy(
            LogicalScan("orders"), [("orders", "o_status")],
            [Aggregate(AggregateFunction.COUNT)]))
        assert isinstance(grouped.root, PGroupBy)
        simple = optimizer.optimize(LogicalGroupBy(
            LogicalScan("orders"), [], [Aggregate(AggregateFunction.COUNT)]))
        assert isinstance(simple.root, PSimpleAgg)

    def test_sort_limit_fused_to_topk(self, optimizer):
        logical = LogicalLimit(
            LogicalSort(LogicalScan("orders"), [("orders", "o_total")]), 5)
        plan = optimizer.optimize(logical)
        assert isinstance(plan.root, PTopK)
        assert plan.root.k == 5

    def test_projection_with_computed_becomes_map(self, optimizer):
        logical = LogicalProject(
            LogicalScan("orders"), [("orders", "o_id")],
            [ComputedColumn("rev", ["orders.o_total"], n_operations=2)])
        plan = optimizer.optimize(logical)
        assert isinstance(plan.root, PMap)
        assert (COMPUTED, "rev") in plan.root.output_columns

    def test_pure_projection_free(self, optimizer):
        logical = LogicalProject(LogicalScan("orders"),
                                 [("orders", "o_id")])
        plan = optimizer.optimize(logical)
        assert isinstance(plan.root, PTableScan)


class TestPlanMetadata:
    def test_node_ids_assigned(self, optimizer, toy_instance):
        logical = LogicalJoin(LogicalScan("orders"), LogicalScan("customer"),
                              _edge(toy_instance, "orders", "customer"))
        plan = optimizer.optimize(logical, "named")
        ids = [op.node_id for op in plan.root.walk()]
        assert ids == sorted(set(ids))
        assert plan.query_name == "named"
        assert plan.database == "toy"

    def test_base_tables(self, optimizer, toy_instance):
        logical = LogicalJoin(LogicalScan("orders"), LogicalScan("customer"),
                              _edge(toy_instance, "orders", "customer"))
        plan = optimizer.optimize(logical)
        assert set(plan.base_tables()) == {"orders", "customer"}
