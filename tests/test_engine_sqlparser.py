"""Tests for the SQL front-end (tokenizer, parser, binder)."""

import pytest

from repro.engine.sqlparser import (
    SQLError,
    parse_select,
    parse_sql,
    tokenize,
)
from repro.engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopK,
    count_joins,
)
from repro.engine.expressions import (
    BetweenPredicate,
    ComparisonPredicate,
    InListPredicate,
    LikePredicate,
    NotPredicate,
    OrPredicate,
)
from repro.engine.optimizer import Optimizer
from repro.engine.pipelines import decompose_into_pipelines


@pytest.fixture(scope="module")
def toy():
    from tests.conftest import build_toy_instance
    return build_toy_instance()


def _bind(toy, sql):
    return parse_sql(sql, toy.schema, toy.catalog)


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize("SELECT a FROM t WHERE x <= 5")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "keyword", "ident",
                         "keyword", "ident", "op", "number", "end"]

    def test_strings_with_escapes(self):
        tokens = tokenize("SELECT a FROM t WHERE s LIKE 'it''s %'")
        assert tokens[-2].kind == "string"

    def test_garbage_rejected(self):
        with pytest.raises(SQLError):
            tokenize("SELECT @ FROM t")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select A from T")
        assert tokens[0].is_keyword("select")
        assert tokens[1].text == "A"  # identifiers keep their case


class TestParser:
    def test_full_statement(self):
        statement = parse_select(
            "SELECT o_status, count(*), sum(o_total) FROM orders "
            "WHERE o_total <= 100 AND o_date BETWEEN 8000 AND 9000 "
            "GROUP BY o_status ORDER BY o_status LIMIT 10")
        assert len(statement.items) == 3
        assert statement.tables == ["orders"]
        assert len(statement.conditions) == 2
        assert statement.group_by == ["o_status"]
        assert statement.limit == 10

    def test_star(self):
        statement = parse_select("SELECT * FROM t")
        assert statement.items[0].star

    def test_or_and_not(self):
        statement = parse_select(
            "SELECT a FROM t WHERE (a <= 1 OR a >= 9) AND NOT b = 5")
        assert statement.conditions[0].kind == "or"
        assert statement.conditions[1].kind == "not"

    def test_in_list(self):
        statement = parse_select("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert statement.conditions[0].values == [1.0, 2.0, 3.0]

    def test_join_condition(self):
        statement = parse_select(
            "SELECT a FROM t1, t2 WHERE t1.x = t2.y")
        assert statement.conditions[0].kind == "join"

    def test_syntax_errors(self):
        for bad in ("SELECT", "SELECT a", "SELECT a FROM t WHERE",
                    "SELECT a FROM t LIMIT x",
                    "SELECT a FROM t WHERE a >< 3",
                    "SELECT a FROM t GROUP a"):
            with pytest.raises(SQLError):
                parse_select(bad)

    def test_trailing_garbage(self):
        with pytest.raises(SQLError):
            parse_select("SELECT a FROM t 42")


class TestBinder:
    def test_simple_scan_with_filters(self, toy):
        plan = _bind(toy, "SELECT o_id FROM orders WHERE o_total <= 100")
        assert isinstance(plan, LogicalProject)
        scan = plan.input
        assert isinstance(scan, LogicalScan)
        assert isinstance(scan.predicates[0], ComparisonPredicate)

    def test_join_binding_uses_declared_edge(self, toy):
        plan = _bind(toy, "SELECT o_id FROM orders, customer "
                          "WHERE o_cust = c_id")
        assert count_joins(plan) == 1
        join = next(n for n in plan.walk() if isinstance(n, LogicalJoin))
        assert join.edge.fanout == 1.0

    def test_three_way_join(self, toy):
        plan = _bind(toy, "SELECT o_id FROM orders, customer, item "
                          "WHERE o_cust = c_id AND o_item = i_id")
        assert count_joins(plan) == 2

    def test_disconnected_join_rejected(self, toy):
        with pytest.raises(SQLError):
            _bind(toy, "SELECT o_id FROM orders, customer")

    def test_group_by_aggregation(self, toy):
        plan = _bind(toy, "SELECT o_status, count(*), avg(o_total) "
                          "FROM orders GROUP BY o_status")
        assert isinstance(plan, LogicalGroupBy)
        assert plan.group_columns == [("orders", "o_status")]
        assert len(plan.aggregates) == 2

    def test_ungrouped_column_rejected(self, toy):
        with pytest.raises(SQLError):
            _bind(toy, "SELECT o_id, count(*) FROM orders GROUP BY o_status")

    def test_order_and_limit_fuse_to_topk(self, toy):
        plan = _bind(toy, "SELECT o_id FROM orders "
                          "ORDER BY o_total DESC LIMIT 5")
        assert isinstance(plan.input, LogicalTopK)
        assert plan.input.k == 5

    def test_order_without_limit_is_sort(self, toy):
        plan = _bind(toy, "SELECT o_id FROM orders ORDER BY o_total")
        assert isinstance(plan.input, LogicalSort)

    def test_limit_without_order(self, toy):
        plan = _bind(toy, "SELECT o_id FROM orders LIMIT 3")
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.input, LogicalLimit)
        assert plan.input.k == 3

    def test_between_in_like_not_or(self, toy):
        plan = _bind(toy, "SELECT c_id FROM customer WHERE "
                          "c_balance BETWEEN 0 AND 100 AND "
                          "c_nation IN (1, 2) AND "
                          "c_name LIKE '%smith%' AND "
                          "NOT c_balance = 5 AND "
                          "(c_nation <= 1 OR c_nation >= 20)")
        scan = plan.input
        kinds = {type(p) for p in scan.predicates}
        assert kinds == {BetweenPredicate, InListPredicate, LikePredicate,
                         NotPredicate, OrPredicate}

    def test_like_on_numeric_rejected(self, toy):
        with pytest.raises(SQLError):
            _bind(toy, "SELECT o_id FROM orders WHERE o_total LIKE '%x%'")

    def test_like_specificity_drives_selectivity(self, toy):
        vague = _bind(toy, "SELECT c_id FROM customer "
                           "WHERE c_name LIKE '%a%'").input.predicates[0]
        specific = _bind(toy, "SELECT c_id FROM customer "
                              "WHERE c_name LIKE '%abcdef%'"
                         ).input.predicates[0]
        assert (specific.true_selectivity(toy.catalog)
                < vague.true_selectivity(toy.catalog))

    def test_unknown_names_rejected(self, toy):
        with pytest.raises((SQLError, Exception)):
            _bind(toy, "SELECT x FROM ghost")
        with pytest.raises(SQLError):
            _bind(toy, "SELECT ghost_col FROM orders")
        with pytest.raises(SQLError):
            _bind(toy, "SELECT orders.ghost FROM orders")

    def test_ambiguity_detected(self, toy):
        # o_id exists only in orders; make an ambiguous case via c_id?
        # Columns are uniquely named in the toy schema, so check the
        # qualified path instead.
        plan = _bind(toy, "SELECT orders.o_id FROM orders")
        assert isinstance(plan, LogicalProject)


class TestEndToEnd:
    def test_sql_to_prediction(self, toy):
        """SQL → logical → physical → pipelines → simulated time."""
        from repro.engine.simulator import ExecutionSimulator
        plan = _bind(toy, "SELECT o_status, sum(o_total) FROM orders, "
                          "customer WHERE o_cust = c_id AND c_balance >= 0 "
                          "GROUP BY o_status ORDER BY o_status")
        physical = Optimizer(toy.schema, toy.catalog).optimize(plan, "sql_q")
        pipelines = decompose_into_pipelines(physical)
        assert len(pipelines) >= 3
        time = ExecutionSimulator(toy.catalog).query_time(physical)
        assert time > 0

    def test_sql_executes_on_real_data(self, toy):
        from repro.datagen.tablegen import generate_table_store
        from repro.engine.executor import VectorizedExecutor
        store = generate_table_store(toy, scale_fraction=0.1, seed=2)
        plan = _bind(toy, "SELECT o_status, count(*) FROM orders "
                          "WHERE o_total <= 5000 GROUP BY o_status")
        physical = Optimizer(toy.schema, toy.catalog).optimize(plan)
        result = VectorizedExecutor(store).execute(physical)
        assert result.n_result_rows >= 1
