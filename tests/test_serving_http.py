"""Tests for the HTTP front end and the ``repro-t3 serve`` CLI."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.errors import (
    ModelNotFoundError,
    QueueFullError,
    ReproError,
    RequestTimeoutError,
    SchemaError,
)
from repro.core.model import T3Config, T3Model
from repro.serving import (
    ModelRegistry,
    PredictionService,
    ServingConfig,
    ServingServer,
    error_response,
)
from repro.trees.boosting import BoostingParams

SQL = "SELECT count(*) FROM orders WHERE o_total <= 500"


@pytest.fixture(scope="module")
def toy_instance():
    from tests.conftest import build_toy_instance
    return build_toy_instance()


@pytest.fixture(scope="module")
def toy_model(toy_instance):
    from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
    workload = WorkloadBuilder(
        toy_instance, WorkloadConfig(queries_per_structure=2,
                                     include_fixed_benchmarks=False)).build()
    return T3Model.train(workload, T3Config(
        boosting=BoostingParams(n_rounds=15, objective="mape",
                                validation_fraction=0.2),
        compile_to_native=True))


@pytest.fixture(scope="module")
def server(toy_model, toy_instance):
    def resolve(name):
        if name == "toy":
            return toy_instance
        raise SchemaError(f"unknown instance {name!r}")

    registry = ModelRegistry()
    registry.register(toy_model, "toy-model")
    service = PredictionService(
        registry, ServingConfig(batch_wait_s=0.001),
        instance_resolver=resolve)
    server = ServingServer(service, port=0).start()
    yield server
    # stop HTTP only; the module-scoped model's library must stay loaded
    server._httpd.shutdown()
    server._httpd.server_close()


def _post(server, payload, path="/predict"):
    body = payload if isinstance(payload, bytes) \
        else json.dumps(payload).encode()
    request = urllib.request.Request(server.url + path, data=body,
                                     method="POST")
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _get(server, path):
    with urllib.request.urlopen(server.url + path) as response:
        return response.status, response.read().decode()


class TestErrorMapping:
    def test_typed_errors_to_status_codes(self):
        assert error_response(QueueFullError("x")) == (429, "queue_full")
        assert error_response(RequestTimeoutError("x")) == (504, "timeout")
        assert error_response(ModelNotFoundError("x")) == (
            404, "model_not_found")
        assert error_response(SchemaError("x")) == (400, "bad_request")
        assert error_response(ReproError("x")) == (400, "bad_request")
        assert error_response(RuntimeError("x")) == (500, "internal_error")


class TestHTTPEndpoints:
    def test_predict_round_trip(self, server):
        status, payload = _post(server, {"sql": SQL, "instance": "toy"})
        assert status == 200
        assert payload["predicted_seconds"] > 0
        assert payload["model"] == "toy-model"
        assert payload["backend"] in ("compiled", "interpreted")
        assert set(payload["stages"]) == {
            "parse_seconds", "featurize_seconds", "infer_seconds",
            "total_seconds"}

    def test_predict_batch_round_trip(self, server):
        status, payload = _post(server, [
            {"sql": SQL, "instance": "toy"},
            {"sql": "SELECT count(*) FROM customer", "instance": "toy"}])
        assert status == 200
        assert isinstance(payload, list) and len(payload) == 2
        assert all(item["predicted_seconds"] > 0 for item in payload)

    def test_predict_batch_validates_every_item(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, [{"sql": SQL, "instance": "toy"},
                           {"sql": SQL}])
        assert excinfo.value.code == 400

    def test_metrics_exposition(self, server):
        _post(server, {"sql": SQL, "instance": "toy"})
        status, text = _get(server, "/metrics")
        assert status == 200
        assert "# TYPE t3_serving_requests_total counter" in text
        assert "t3_serving_queue_capacity" in text

    def test_healthz(self, server):
        status, text = _get(server, "/healthz")
        payload = json.loads(text)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["models"][0]["name"] == "toy-model"

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404

    def test_invalid_json_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, b"{not json")
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"] == "invalid_json"

    def test_missing_fields_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, {"sql": SQL})
        assert excinfo.value.code == 400

    def test_bad_sql_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, {"sql": "SELECT FROM", "instance": "toy"})
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"] == "bad_request"

    def test_unknown_instance_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, {"sql": SQL, "instance": "missing"})
        assert excinfo.value.code == 404
        assert json.loads(
            excinfo.value.read())["error"] == "instance_not_found"

    def test_unknown_model_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, {"sql": SQL, "instance": "toy",
                           "model": "absent"})
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"] == "model_not_found"


class TestServeCLI:
    """End-to-end: ``repro-t3 serve`` as a real subprocess."""

    @pytest.fixture(scope="class")
    def model_file(self, toy_model, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve-cli") / "model.json"
        toy_model.save(path)
        return path

    def test_serve_subprocess_smoke(self, model_file, tmp_path):
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        port_file = tmp_path / "port"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "-m", str(model_file), "--port", "0",
             "--port-file", str(port_file), "--no-compile"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists() and time.monotonic() < deadline:
                assert process.poll() is None, \
                    process.communicate()[1].decode()
                time.sleep(0.1)
            assert port_file.exists(), "server never wrote its port file"
            url = f"http://127.0.0.1:{int(port_file.read_text())}"

            body = json.dumps({
                "sql": "SELECT count(*) FROM lineitem "
                       "WHERE l_quantity <= 10",
                "instance": "tpch_sf1"}).encode()
            request = urllib.request.Request(url + "/predict", data=body,
                                             method="POST")
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.loads(response.read())
            assert payload["predicted_seconds"] > 0
            assert payload["backend"] == "interpreted"  # --no-compile

            with urllib.request.urlopen(url + "/metrics",
                                        timeout=30) as response:
                metrics = response.read().decode()
            assert "t3_serving_requests_total 1" in metrics

            process.send_signal(signal.SIGINT)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, stderr.decode()
            assert "shutting down" in stderr.decode()
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
