"""Call-graph construction and interprocedural summaries.

The call graph resolves callees through layered strategies (same-module
names, imports, self/cls methods, annotations, constructor assignment,
class-hierarchy fallback); the summaries propagate taint and may-raise
sets bottom-up over its edges. Each resolution layer and each summary
direction gets a small corpus that only that layer can resolve.
"""

from __future__ import annotations

import textwrap

from repro.checks.callgraph import build_call_graph
from repro.checks.interproc import (
    ExceptionHierarchy,
    compute_raises_summaries,
    compute_taint_summaries,
)


def _graph(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return build_call_graph([tmp_path])


def _callees(graph, qname):
    out = set()
    for site in graph.functions[qname].calls:
        out.update(site.callees)
    return out


# ---------------------------------------------------------------------------
# call resolution layers
# ---------------------------------------------------------------------------


def test_same_module_call_resolves(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        def helper():
            return 1

        def caller():
            return helper()
    """})
    assert _callees(graph, "mod:caller") == {"mod:helper"}


def test_imported_call_resolves(tmp_path):
    graph = _graph(tmp_path, {
        "util.py": """
            def shared():
                return 1
        """,
        "mod.py": """
            from .util import shared

            def caller():
                return shared()
        """})
    assert _callees(graph, "mod:caller") == {"util:shared"}


def test_self_method_call_resolves(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        class Box:
            def _inner(self):
                return 1

            def outer(self):
                return self._inner()
    """})
    assert _callees(graph, "mod:Box.outer") == {"mod:Box._inner"}


def test_inherited_method_resolves_through_base(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        class Base:
            def work(self):
                return 1

        class Child(Base):
            def run(self):
                return self.work()
    """})
    assert _callees(graph, "mod:Child.run") == {"mod:Base.work"}


def test_annotation_typed_parameter_resolves(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        class Service:
            def close(self):
                return None

        def shutdown(service: Service):
            service.close()
    """})
    assert _callees(graph, "mod:shutdown") == {"mod:Service.close"}


def test_constructor_assignment_resolves_attr_calls(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        class Worker:
            def step(self):
                return 1

        class Owner:
            def __init__(self):
                self.worker = Worker()

            def tick(self):
                return self.worker.step()
    """})
    assert _callees(graph, "mod:Owner.tick") == {"mod:Worker.step"}


def test_cha_fallback_caps_candidates(tmp_path):
    # Four classes define the same method: past the cap, resolution
    # gives up (empty) rather than guessing wildly.
    classes = "\n".join(
        f"class C{i}:\n    def fire(self):\n        return {i}\n"
        for i in range(4))
    graph = _graph(tmp_path, {"mod.py": f"""
        {textwrap.indent(classes, '        ').strip()}

        def dispatch(obj):
            return obj.fire()
    """})
    assert _callees(graph, "mod:dispatch") == set()


def test_callers_of_reverse_edges(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        def leaf():
            return 1

        def a():
            return leaf()

        def b():
            return leaf()
    """})
    assert set(graph.callers_of()["mod:leaf"]) == {"mod:a", "mod:b"}


# ---------------------------------------------------------------------------
# taint summaries
# ---------------------------------------------------------------------------


def test_taint_propagates_through_return(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        import time

        def now():
            return time.time()

        def stamp():
            return now()
    """})
    summaries = compute_taint_summaries(graph)
    assert "clock" in summaries["mod:now"].returns
    assert "clock" in summaries["mod:stamp"].returns


def test_taint_reaches_sink_interprocedurally(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        import time

        def now():
            return time.time()

        def seed_it(derive_seed):
            value = now()
            derive_seed(value)
    """})
    summaries = compute_taint_summaries(graph)
    hits = summaries["mod:seed_it"].hits
    assert len(hits) == 1
    assert hits[0].sink == "derive_seed"
    assert "clock" in hits[0].kinds


def test_param_to_sink_summary(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        def forward(value):
            derive_seed(value)
    """})
    summaries = compute_taint_summaries(graph)
    assert summaries["mod:forward"].param_to_sink == {0: {"derive_seed"}}


def test_sorted_launders_set_order(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        def clean(items):
            ordered = sorted(set(items))
            derive_seed(ordered)
    """})
    summaries = compute_taint_summaries(graph)
    assert not any("set-order" in h.kinds
                   for h in summaries["mod:clean"].hits)


# ---------------------------------------------------------------------------
# raises summaries
# ---------------------------------------------------------------------------


def test_raise_escapes_through_call_chain(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        def deep():
            raise ValueError("boom")

        def mid():
            return deep()

        def top():
            return mid()
    """})
    hierarchy = ExceptionHierarchy.from_graph(graph)
    summaries = compute_raises_summaries(graph, hierarchy)
    assert "ValueError" in summaries["mod:top"].escapes


def test_handler_stops_escape(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        def deep():
            raise ValueError("boom")

        def top():
            try:
                return deep()
            except ValueError:
                return None
    """})
    hierarchy = ExceptionHierarchy.from_graph(graph)
    summaries = compute_raises_summaries(graph, hierarchy)
    assert "ValueError" not in summaries["mod:top"].escapes


def test_orelse_raises_escape_past_handlers(tmp_path):
    # Python does not route a try's `else` block through its handlers.
    graph = _graph(tmp_path, {"mod.py": """
        def top():
            try:
                x = 1
            except ValueError:
                return None
            else:
                raise ValueError("late")
    """})
    hierarchy = ExceptionHierarchy.from_graph(graph)
    summaries = compute_raises_summaries(graph, hierarchy)
    assert "ValueError" in summaries["mod:top"].escapes


def test_hierarchy_catches_subclass_via_corpus_bases(tmp_path):
    graph = _graph(tmp_path, {"mod.py": """
        class AppError(Exception):
            pass

        class DeepError(AppError):
            pass

        def deep():
            raise DeepError("boom")

        def top():
            try:
                return deep()
            except AppError:
                return None
    """})
    hierarchy = ExceptionHierarchy.from_graph(graph)
    assert hierarchy.catches("AppError", "DeepError")
    summaries = compute_raises_summaries(graph, hierarchy)
    assert "DeepError" not in summaries["mod:top"].escapes
