"""Tests for the 21-instance corpus."""

import pytest

from repro.errors import SchemaError
from repro.datagen.instances import (
    all_instance_names,
    get_instance,
    instance_families,
)


class TestCorpus:
    def test_exactly_21_instances(self):
        assert len(all_instance_names()) == 21

    def test_all_build_with_complete_statistics(self):
        for name in all_instance_names():
            instance = get_instance(name)
            instance.catalog.validate_complete()
            assert instance.schema.table_names

    def test_instances_cached(self):
        assert get_instance("imdb") is get_instance("imdb")

    def test_unknown_instance(self):
        with pytest.raises(SchemaError):
            get_instance("nonexistent")

    def test_scale_factor_families(self):
        families = instance_families()
        assert "tpch" in families and "tpcds" in families
        # 21 instances collapse into 17 families (3 tpch + 3 tpcds scales).
        assert len(families) == 17

    def test_scale_factors_scale_rows(self):
        sf1 = get_instance("tpch_sf1").catalog.row_count("lineitem")
        sf10 = get_instance("tpch_sf10").catalog.row_count("lineitem")
        assert sf10 == 10 * sf1

    def test_join_edges_reference_valid_columns(self):
        for name in all_instance_names():
            schema = get_instance(name).schema
            for edge in schema.join_edges:
                schema.table(edge.left_table).column(edge.left_column)
                schema.table(edge.right_table).column(edge.right_column)

    def test_tpch_shape(self):
        instance = get_instance("tpch_sf1")
        assert set(instance.schema.table_names) >= {
            "lineitem", "orders", "customer", "part", "supplier",
            "partsupp", "nation", "region"}
        assert instance.catalog.row_count("lineitem") == 6_000_000
        assert instance.catalog.row_count("region") == 5

    def test_imdb_shape(self):
        instance = get_instance("imdb")
        assert "cast_info" in instance.schema.table_names
        assert instance.catalog.row_count("cast_info") > 30_000_000

    def test_synthetic_instances_deterministic(self):
        from repro.datagen.instances import _build_synthetic
        a = _build_synthetic("financial")
        b = _build_synthetic("financial")
        assert a.schema.table_names == b.schema.table_names
        for table in a.schema.table_names:
            assert a.catalog.row_count(table) == b.catalog.row_count(table)

    def test_every_instance_has_joinable_tables(self):
        for name in all_instance_names():
            schema = get_instance(name).schema
            assert schema.join_edges, f"{name} has no join edges"
