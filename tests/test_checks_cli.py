"""`repro-t3 check` command: exit codes, formats, baseline handling."""

from __future__ import annotations

import json

from repro.cli import main

_ALL_ANALYZERS = {"codegen", "feature-schema", "plan-invariants",
                  "ensemble", "concurrency", "lint", "responsiveness",
                  "determinism", "exceptions", "resources", "hotpath"}


def _stale_model(tmp_path):
    path = tmp_path / "stale_model.json"
    path.write_text(json.dumps({"model": {"n_features": 3}}))
    return str(path)


def test_check_repo_exits_zero(capsys):
    assert main(["check"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_check_json_format(capsys):
    assert main(["check", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert set(payload["analyzers"]) == _ALL_ANALYZERS
    assert set(payload["analyzer_seconds"]) == _ALL_ANALYZERS


def test_check_sarif_format(capsys):
    assert main(["check", "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    # The two baselined findings (the ROADMAP HP003 perf debt and the
    # lifecycle log's intentional mid-frame fault site) ride along as
    # externally suppressed results; nothing else may appear.
    results = doc["runs"][0]["results"]
    assert sorted(r["ruleId"] for r in results) == ["HP003", "HP004"]
    assert all(r["suppressions"][0]["kind"] == "external" for r in results)
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-t3-check"


def test_check_rule_filter(capsys):
    assert main(["check", "--rule", "LK", "--format", "json"]) == 0
    assert (json.loads(capsys.readouterr().out)["analyzers"]
            == ["concurrency"])


def test_check_unknown_rule_fails(capsys):
    assert main(["check", "--rule", "ZZ999"]) == 1
    assert "unknown rule" in capsys.readouterr().err


def test_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("CG001", "FS001", "LK001", "LK008", "PI001", "PI012",
                 "EA001", "EA010", "PL001", "DT001", "DT010", "EX001",
                 "EX006", "RS001", "RS008", "HP001", "HP010"):
        assert rule in out


def test_check_only_flag(capsys):
    assert main(["check", "--only", "determinism", "--only", "EX",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["analyzers"] == ["determinism", "exceptions"]


def test_check_only_unknown_analyzer_fails(capsys):
    assert main(["check", "--only", "nosuch"]) == 1
    assert "unknown analyzer" in capsys.readouterr().err


def test_check_jobs_flag(capsys):
    assert main(["check", "--jobs", "4", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert set(payload["analyzers"]) == _ALL_ANALYZERS


def test_check_warns_on_stale_suppression(tmp_path, capsys):
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '[[suppress]]\nrule = "PL004"\n'
        'path = "src/repro/nonexistent.py"\nline = 1\n'
        # the grandfathered findings must stay covered for the full
        # run to exit 0
        '[[suppress]]\nrule = "HP003"\n'
        'path = "src/repro/parallel/executor.py"\n'
        '[[suppress]]\nrule = "HP004"\n'
        'path = "src/repro/lifecycle/obslog.py"\n')
    assert main(["check", "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "stale baseline suppression PL004" in out
    assert "src/repro/nonexistent.py:1" in out


def test_check_seeded_drift_exits_nonzero(tmp_path, capsys):
    stale = _stale_model(tmp_path)
    assert main(["check", "--rule", "FS", "--model", stale]) == 1
    assert "FS004" in capsys.readouterr().out


def test_check_analyzer_crash_exits_3(tmp_path, capsys):
    missing = str(tmp_path / "never_written.json")
    assert main(["check", "--rule", "FS", "--model", missing]) == 3
    assert "FS000" in capsys.readouterr().out


def test_check_write_baseline_then_suppress(tmp_path, capsys):
    stale = _stale_model(tmp_path)
    baseline = str(tmp_path / "baseline.toml")
    assert main(["check", "--rule", "FS", "--model", stale,
                 "--write-baseline", baseline]) == 0
    assert "1 suppression(s)" in capsys.readouterr().out
    assert main(["check", "--rule", "FS", "--model", stale,
                 "--baseline", baseline]) == 0
    out = capsys.readouterr().out
    assert "suppressed by baseline" in out
    assert main(["check", "--rule", "FS", "--model", stale,
                 "--no-baseline", "--baseline", baseline]) == 1


def test_check_update_baseline_round_trip(tmp_path, capsys):
    stale = _stale_model(tmp_path)
    baseline = str(tmp_path / "baseline.toml")
    assert main(["check", "--rule", "FS", "--model", stale,
                 "--baseline", baseline, "--update-baseline"]) == 0
    out = capsys.readouterr().out
    assert "kept 0, added 1" in out
    content = open(baseline).read()
    assert "# reason: TODO" in content
    # The regenerated baseline suppresses the finding on the next run.
    assert main(["check", "--rule", "FS", "--model", stale,
                 "--baseline", baseline]) == 0
    assert "suppressed by baseline" in capsys.readouterr().out
    # Re-running update on a now-clean tree drops the stale entry.
    assert main(["check", "--rule", "LK",
                 "--baseline", baseline, "--update-baseline"]) == 0
    assert "dropped 1" in capsys.readouterr().out


def test_check_missing_baseline_fails(capsys):
    assert main(["check", "--baseline", "/nonexistent/baseline.toml"]) == 1
    assert "baseline file not found" in capsys.readouterr().err
