"""`repro-t3 check` command: exit codes, formats, baseline handling."""

from __future__ import annotations

import json

from repro.cli import main


def _stale_model(tmp_path):
    path = tmp_path / "stale_model.json"
    path.write_text(json.dumps({"model": {"n_features": 3}}))
    return str(path)


def test_check_repo_exits_zero(capsys):
    assert main(["check"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_check_json_format(capsys):
    assert main(["check", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert set(payload["analyzers"]) == {"codegen", "feature-schema",
                                         "lockcheck", "lint"}


def test_check_rule_filter(capsys):
    assert main(["check", "--rule", "LK", "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out)["analyzers"] == ["lockcheck"]


def test_check_unknown_rule_fails(capsys):
    assert main(["check", "--rule", "ZZ999"]) == 1
    assert "unknown rule" in capsys.readouterr().err


def test_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("CG001", "FS001", "LK001", "PL001"):
        assert rule in out


def test_check_seeded_drift_exits_nonzero(tmp_path, capsys):
    stale = _stale_model(tmp_path)
    assert main(["check", "--rule", "FS", "--model", stale]) == 1
    assert "FS004" in capsys.readouterr().out


def test_check_write_baseline_then_suppress(tmp_path, capsys):
    stale = _stale_model(tmp_path)
    baseline = str(tmp_path / "baseline.toml")
    assert main(["check", "--rule", "FS", "--model", stale,
                 "--write-baseline", baseline]) == 0
    assert "1 suppression(s)" in capsys.readouterr().out
    assert main(["check", "--rule", "FS", "--model", stale,
                 "--baseline", baseline]) == 0
    out = capsys.readouterr().out
    assert "suppressed by baseline" in out
    assert main(["check", "--rule", "FS", "--model", stale,
                 "--no-baseline", "--baseline", baseline]) == 1


def test_check_missing_baseline_fails(capsys):
    assert main(["check", "--baseline", "/nonexistent/baseline.toml"]) == 1
    assert "baseline file not found" in capsys.readouterr().err
