"""Tests for the baseline models (NN framework, Zero-Shot, AutoWLM, Stage)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.baselines.nn import MLP, AdamOptimizer
from repro.baselines.zeroshot import (
    N_NODE_FEATURES,
    ZeroShotConfig,
    ZeroShotModel,
    encode_plan,
)
from repro.baselines.autowlm import AutoWLMModel
from repro.baselines.stage import StageConfig, StageModel, plan_fingerprint
from repro.baselines.cout import cout_cost
from repro.core.dataset import cardinality_model_for
from repro.engine.cardinality import ExactCardinalityModel
from repro.rng import derive_rng


@pytest.fixture(scope="module")
def toy_workload():
    from tests.conftest import build_toy_instance
    from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
    config = WorkloadConfig(queries_per_structure=3,
                            include_fixed_benchmarks=False)
    return WorkloadBuilder(build_toy_instance(), config).build()


@pytest.fixture(scope="module")
def exact(toy_workload):
    return ExactCardinalityModel(toy_workload[0].catalog)


@pytest.fixture(scope="module")
def zeroshot(toy_workload):
    config = ZeroShotConfig(n_epochs=40, hidden_size=48)
    return ZeroShotModel(config).fit(toy_workload)


class TestNNFramework:
    def test_mlp_learns_xor_like_function(self):
        rng = derive_rng(0, "nn-test")
        X = rng.uniform(-1, 1, size=(800, 2))
        y = (np.sign(X[:, 0] * X[:, 1]))[:, None]
        mlp = MLP([2, 32, 32, 1], rng)
        optimizer = AdamOptimizer(mlp.parameters(), learning_rate=3e-3)
        for _ in range(400):
            mlp.zero_grad()
            out = mlp.forward(X)
            grad = 2 * (out - y) / len(y)
            mlp.backward(grad)
            optimizer.step()
        final = float(np.mean((mlp.forward(X, remember=False) - y) ** 2))
        assert final < 0.3

    def test_backward_before_forward_rejected(self):
        mlp = MLP([2, 4, 1], derive_rng(0, "x"))
        with pytest.raises(TrainingError):
            mlp.backward(np.zeros((1, 1)))

    def test_mlp_needs_two_sizes(self):
        with pytest.raises(TrainingError):
            MLP([3], derive_rng(0, "y"))

    def test_gradient_clipping_bounds_step(self):
        rng = derive_rng(0, "clip")
        layer_params = [(np.zeros(4), np.full(4, 1e9))]
        optimizer = AdamOptimizer(layer_params, learning_rate=0.1,
                                  clip_norm=1.0)
        optimizer.step()
        # After one Adam step with clipped gradients, |update| <= lr-ish.
        assert np.all(np.abs(layer_params[0][0]) < 1.0)


class TestZeroShot:
    def test_encode_plan_shape(self, toy_workload, exact):
        nodes = encode_plan(toy_workload[0].plan, exact)
        assert nodes.shape == (toy_workload[0].plan.n_operators,
                               N_NODE_FEATURES)
        assert np.isfinite(nodes).all()

    def test_fits_training_workload(self, zeroshot, toy_workload):
        summary = zeroshot.evaluate(toy_workload)
        assert summary.p50 < 5.0

    def test_predictions_positive_and_clamped(self, zeroshot, toy_workload,
                                              exact):
        for query in toy_workload[:10]:
            value = zeroshot.predict_query(query.plan, exact)
            assert 0 < value < 1e6

    def test_predict_before_fit_rejected(self, toy_workload, exact):
        model = ZeroShotModel(ZeroShotConfig(n_epochs=1))
        with pytest.raises(TrainingError):
            model.predict_query(toy_workload[0].plan, exact)

    def test_training_loss_decreases(self, zeroshot):
        losses = zeroshot.log.train_losses
        assert losses[-1] < losses[0]

    def test_deterministic(self, toy_workload):
        config = ZeroShotConfig(n_epochs=5, hidden_size=16, seed=4)
        a = ZeroShotModel(config).fit(toy_workload[:12])
        b = ZeroShotModel(config).fit(toy_workload[:12])
        model = ExactCardinalityModel(toy_workload[0].catalog)
        pa = a.predict_query(toy_workload[0].plan, model)
        pb = b.predict_query(toy_workload[0].plan, model)
        assert pa == pytest.approx(pb)


class TestAutoWLM:
    def test_trains_and_predicts(self, toy_workload, exact):
        model = AutoWLMModel.train(toy_workload)
        assert model.predict_query(toy_workload[0].plan, exact) > 0
        summary = model.evaluate(toy_workload)
        assert summary.p50 < 10.0

    def test_not_compiled(self, toy_workload):
        model = AutoWLMModel.train(toy_workload)
        assert not model.inner.is_compiled


class TestStage:
    @pytest.fixture(scope="class")
    def stage(self, toy_workload):
        from repro.baselines.zeroshot import ZeroShotConfig
        return StageModel.train(
            toy_workload, StageConfig(tree_max_operators=4),
            network_config=ZeroShotConfig(n_epochs=15, hidden_size=32))

    def test_routing_tiers(self, stage, toy_workload):
        tiers = {stage.route(q.plan) for q in toy_workload}
        assert "tree" in tiers and "nn" in tiers

    def test_cache_tier_after_observation(self, stage, toy_workload, exact):
        query = toy_workload[0]
        stage.observe(query.plan, 0.123)
        value, tier = stage.predict_query(query.plan, exact)
        assert tier == "cache"
        assert value == 0.123

    def test_fingerprint_stable_and_discriminating(self, toy_workload):
        a = plan_fingerprint(toy_workload[0].plan)
        assert a == plan_fingerprint(toy_workload[0].plan)
        fingerprints = {plan_fingerprint(q.plan) for q in toy_workload}
        assert len(fingerprints) > len(toy_workload) // 2

    def test_all_tiers_produce_predictions(self, stage, toy_workload, exact):
        for query in toy_workload[:15]:
            value, tier = stage.predict_query(query.plan, exact)
            assert value > 0
            assert tier in ("cache", "tree", "nn")


class TestCout:
    def test_formula(self):
        assert cout_cost(100.0, 5.0, 7.0) == 112.0
