"""Tests for join graphs, DPsize, and the T3 join cost model."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.engine.logical import LogicalGroupBy, LogicalJoin, LogicalScan
from repro.engine.expressions import Aggregate, AggregateFunction
from repro.datagen.instances import get_instance
from repro.datagen.benchmarks_job import job_queries
from repro.joinorder import (
    CoutJoinCost,
    JoinGraph,
    T3JoinCost,
    dpsize,
    greedy_order,
    join_tree_tables,
)
from repro.joinorder.dpsize import tree_to_logical


@pytest.fixture(scope="module")
def imdb():
    return get_instance("imdb")


@pytest.fixture(scope="module")
def job_graphs(imdb):
    graphs = []
    for name, logical in job_queries(imdb)[:20]:
        graphs.append((name, JoinGraph.from_logical(logical, imdb.catalog)))
    return graphs


def _toy_graph(toy_instance):
    logical = LogicalGroupBy(
        LogicalJoin(
            LogicalJoin(LogicalScan("orders"), LogicalScan("customer"),
                        toy_instance.schema.edge_between("orders", "customer")),
            LogicalScan("item"),
            toy_instance.schema.edge_between("orders", "item")),
        [], [Aggregate(AggregateFunction.COUNT)])
    return JoinGraph.from_logical(logical, toy_instance.catalog)


class TestJoinGraph:
    def test_extraction(self, toy_instance):
        graph = _toy_graph(toy_instance)
        assert graph.n_relations == 3
        assert len(graph.edges) == 2

    def test_cardinality_oracle_consistency(self, toy_instance):
        graph = _toy_graph(toy_instance)
        full = graph.cardinality((1 << 3) - 1)
        # orders joins both dims on fks: full result ~ |orders|
        assert full == pytest.approx(
            toy_instance.catalog.row_count("orders"), rel=0.05)

    def test_connectivity(self, toy_instance):
        graph = _toy_graph(toy_instance)
        orders_bit = 1 << 0
        assert graph.connected(orders_bit, 0b110)
        # customer and item only connect through orders.
        assert not graph.connected(0b010, 0b100)

    def test_semi_join_rejected(self, toy_instance):
        logical = LogicalJoin(
            LogicalScan("orders"), LogicalScan("customer"),
            toy_instance.schema.edge_between("orders", "customer"),
            kind="semi")
        with pytest.raises(PlanError):
            JoinGraph.from_logical(logical, toy_instance.catalog)

    def test_job_graphs_build(self, job_graphs):
        for name, graph in job_graphs:
            assert graph.n_relations >= 2
            assert graph.cardinality((1 << graph.n_relations) - 1) >= 0


class TestDPsize:
    def test_finds_connected_tree(self, toy_instance):
        graph = _toy_graph(toy_instance)
        result = dpsize(graph, CoutJoinCost())
        tables = join_tree_tables(result.tree, graph)
        assert sorted(tables) == ["customer", "item", "orders"]
        assert result.model_calls > 0

    def test_optimal_for_cout_on_chain(self, toy_instance):
        """DPsize must beat or match any fixed order under its own cost."""
        graph = _toy_graph(toy_instance)
        result = dpsize(graph, CoutJoinCost())
        # Exhaustive check over the 3-relation space: cost is minimal.
        assert result.cost <= graph.cardinality(0b111) + min(
            graph.cardinality(0b011), graph.cardinality(0b101))

    def test_cost_model_call_ratio(self, job_graphs, toy_workload):
        """T3 makes ~2 calls per combination vs 1 for C_out (Table 5)."""
        from repro.core.model import T3Model
        from repro.trees.boosting import BoostingParams
        from repro.core.model import T3Config
        model = T3Model.train(
            toy_workload,
            T3Config(boosting=BoostingParams(n_rounds=10),
                     compile_to_native=False))
        name, graph = job_graphs[0]
        cout = dpsize(graph, CoutJoinCost())
        t3 = dpsize(graph, T3JoinCost(model.predict_raw_one))
        # Leaves add n extra calls for T3; combinations cost 2x.
        assert t3.model_calls >= 2 * cout.model_calls
        assert t3.model_calls <= 2 * cout.model_calls + graph.n_relations

    def test_all_job_prefix_optimizes(self, job_graphs):
        for name, graph in job_graphs:
            result = dpsize(graph, CoutJoinCost())
            assert len(join_tree_tables(result.tree, graph)) == \
                graph.n_relations

    def test_tree_to_logical_roundtrip(self, toy_instance):
        graph = _toy_graph(toy_instance)
        result = dpsize(graph, CoutJoinCost())
        logical = tree_to_logical(result.tree, graph)
        rebuilt = JoinGraph.from_logical(logical, toy_instance.catalog)
        assert rebuilt.n_relations == graph.n_relations

    def test_disconnected_graph_rejected(self, toy_instance):
        graph = _toy_graph(toy_instance)
        graph.edges.clear()
        with pytest.raises(PlanError):
            dpsize(graph, CoutJoinCost())


class TestGreedy:
    def test_produces_full_tree(self, toy_instance):
        graph = _toy_graph(toy_instance)
        tree = greedy_order(graph, estimation_sigma=0.5, seed=1)
        assert sorted(join_tree_tables(tree, graph)) == [
            "customer", "item", "orders"]

    def test_perfect_estimates_match_dpsize_cost_class(self, job_graphs):
        """With sigma=0, greedy should find reasonable (not absurd) orders."""
        name, graph = job_graphs[0]
        tree = greedy_order(graph, estimation_sigma=0.0)
        assert len(join_tree_tables(tree, graph)) == graph.n_relations

    def test_deterministic(self, toy_instance):
        graph = _toy_graph(toy_instance)
        a = greedy_order(graph, estimation_sigma=0.7, seed=3)
        b = greedy_order(graph, estimation_sigma=0.7, seed=3)
        assert join_tree_tables(a, graph) == join_tree_tables(b, graph)
