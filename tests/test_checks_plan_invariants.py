"""Plan-invariant verifier (PI rules): per-rule triggers and clean passes.

The table rules (PI001..PI005, PI008) are driven by planted
:class:`OperatorInfo` lists; the AST rules (PI006..PI012) by fixture
source files with one planted defect each, next to a clean fixture of
the same shape. ``check_plan_invariants`` against the live repo proves
the engine itself satisfies every invariant.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.checks.plan_invariants import (
    OperatorInfo,
    check_plan_invariants,
    verify_cardinality_ast,
    verify_decomposer_ast,
    verify_featurization_ast,
    verify_stage_tables,
    verify_target_transform,
)
from repro.engine.stages import Stage
from repro.errors import CheckError


def _info(name="HashJoin", stages=(Stage.BUILD, Stage.PROBE), arity=2,
          probe_capable=True, binary=True, materializing=False):
    return OperatorInfo(name=name, stages=stages, arity=arity,
                        probe_capable=probe_capable, binary=binary,
                        materializing=materializing)


def _table_rules(*infos):
    return {f.rule for f in verify_stage_tables(list(infos))}


# ---------------------------------------------------------------------------
# PI001..PI005, PI008 — the stage tables
# ---------------------------------------------------------------------------

def test_pi001_missing_stage_declaration():
    assert _table_rules(_info(stages=None)) == {"PI001"}


def test_pi001_missing_physical_class():
    assert _table_rules(_info(arity=None)) == {"PI001"}


def test_pi002_binary_and_materializing():
    assert "PI002" in _table_rules(_info(binary=True, materializing=True))


def test_pi003_undecomposable_operator():
    undecomposable = _info(name="Mystery", stages=(Stage.SCAN,), arity=3,
                           probe_capable=False, binary=False,
                           materializing=False)
    assert _table_rules(undecomposable) == {"PI003"}


def test_pi004_declared_stages_disagree_with_decomposer():
    drifted = _info(name="Filter", stages=(Stage.SCAN,), arity=1,
                    probe_capable=False, binary=False, materializing=False)
    # arity-1 operators decompose to PassThrough, not Scan.
    assert _table_rules(drifted) == {"PI004"}


def test_pi005_malformed_stage_tuple():
    malformed = _info(stages=(Stage.PROBE,))
    assert _table_rules(malformed) == {"PI005"}


def test_pi008_probe_without_probe_capability():
    assert _table_rules(_info(probe_capable=False)) == {"PI008"}


def test_stage_tables_clean_fixture():
    clean = [
        _info(name="TableScan", stages=(Stage.SCAN,), arity=0,
              probe_capable=False, binary=False, materializing=False),
        _info(name="Filter", stages=(Stage.PASS_THROUGH,), arity=1,
              probe_capable=False, binary=False, materializing=False),
        _info(name="HashJoin"),
        _info(name="Sort", stages=(Stage.BUILD, Stage.SCAN), arity=1,
              probe_capable=False, binary=False, materializing=True),
        _info(name="Union", stages=(Stage.BUILD, Stage.SCAN), arity=2,
              probe_capable=False, binary=True, materializing=False),
        _info(name="IndexNLJoin", stages=(Stage.PASS_THROUGH,), arity=1,
              probe_capable=False, binary=False, materializing=False),
    ]
    assert verify_stage_tables(clean) == []


# ---------------------------------------------------------------------------
# PI006/PI007 — decomposer AST
# ---------------------------------------------------------------------------

_DECOMPOSER_CLEAN = '''
def decompose_into_pipelines(plan):
    def visit(op, pipeline):
        if op.breaker:
            pipeline.append(StageRef(op, Stage.BUILD))
            completed.append(pipeline)
            return [StageRef(op, Stage.SCAN)]
        return [StageRef(op, Stage.SCAN)]
    completed = []
    visit(plan, [])
    return completed
'''


def _write(tmp_path, source):
    path = tmp_path / "pipelines_fixture.py"
    path.write_text(textwrap.dedent(source))
    return path


def test_pi006_build_append_without_completion(tmp_path):
    broken = _DECOMPOSER_CLEAN.replace(
        "            completed.append(pipeline)\n", "")
    findings = verify_decomposer_ast(_write(tmp_path, broken))
    assert {f.rule for f in findings} == {"PI006"}
    assert "completed.append" in findings[0].message


def test_pi007_fresh_pipeline_not_starting_with_scan(tmp_path):
    broken = _DECOMPOSER_CLEAN.replace(
        "            return [StageRef(op, Stage.SCAN)]",
        "            return [StageRef(op, Stage.PROBE)]")
    findings = verify_decomposer_ast(_write(tmp_path, broken))
    assert {f.rule for f in findings} == {"PI007"}


def test_decomposer_clean_fixture(tmp_path):
    assert verify_decomposer_ast(_write(tmp_path, _DECOMPOSER_CLEAN)) == []


# ---------------------------------------------------------------------------
# PI009/PI010 — featurizer AST
# ---------------------------------------------------------------------------

_FEATURES_CLEAN = '''
_EXPRESSION_CLASSES = (
    ExpressionKind.COMPARISON,
    ExpressionKind.ARITHMETIC,
)

_STAGE_FEATURES = {
    (OperatorType.TABLE_SCAN, Stage.SCAN): (
        "expr_comparison_percentage",
        "expr_arithmetic_percentage",
    ),
}


class FeatureRegistry:
    def _basic_feature_values(self, suffix, start, op):
        if suffix == "in_percentage":
            return self.model.input_cardinality(op) / start
        if suffix == "right_percentage":
            return self.model.right_cardinality(op) / start
        if suffix == "out_percentage":
            return self.model.base_cardinality(op) / start
        return 0.0

    def _expression_percentages(self, fractions, start, scale):
        scale = scale / start
        return {
            "expr_comparison_percentage":
                fractions[ExpressionKind.COMPARISON] * scale,
            "expr_arithmetic_percentage":
                fractions[ExpressionKind.ARITHMETIC] * scale,
        }
'''


def _features(tmp_path, source):
    path = tmp_path / "features_fixture.py"
    path.write_text(textwrap.dedent(source))
    return verify_featurization_ast(path)


def test_pi009_percentage_without_start_division(tmp_path):
    broken = _FEATURES_CLEAN.replace(
        'return self.model.input_cardinality(op) / start',
        'return self.model.input_cardinality(op)')
    findings = _features(tmp_path, broken)
    assert {f.rule for f in findings} == {"PI009"}
    assert "in_percentage" in findings[0].message


def test_pi009_expression_percentages_without_start(tmp_path):
    broken = _FEATURES_CLEAN.replace("scale = scale / start",
                                     "scale = scale")
    findings = _features(tmp_path, broken)
    assert any(f.rule == "PI009" for f in findings)


def test_pi010_key_reading_two_classes(tmp_path):
    broken = _FEATURES_CLEAN.replace(
        "fractions[ExpressionKind.COMPARISON] * scale",
        "(fractions[ExpressionKind.COMPARISON]"
        " + fractions[ExpressionKind.ARITHMETIC]) * scale")
    findings = _features(tmp_path, broken)
    rules = {f.rule for f in findings}
    assert rules == {"PI010"}
    # The double-read key AND the twice-consumed class are both reported.
    assert len(findings) == 2


def test_pi010_declared_class_never_emitted(tmp_path):
    broken = _FEATURES_CLEAN.replace(
        '            "expr_arithmetic_percentage":\n'
        '                fractions[ExpressionKind.ARITHMETIC] * scale,\n', "")
    findings = _features(tmp_path, broken)
    assert all(f.rule == "PI010" for f in findings)
    assert any("ARITHMETIC" in f.message for f in findings)
    # The schema/emit mismatch is reported too.
    assert any("declared but never emitted" in f.message for f in findings)


def test_featurizer_clean_fixture(tmp_path):
    assert _features(tmp_path, _FEATURES_CLEAN) == []


# ---------------------------------------------------------------------------
# PI011 — cardinality clamps
# ---------------------------------------------------------------------------

_CARDINALITY_CLEAN = '''
class CardinalityModel:
    def output_cardinality(self, op):
        return max(0.0, self._compute(op))

    def predicate_selectivity(self, pred):
        return min(1.0, max(0.0, self._estimate(pred)))

    def _conjunction_selectivity(self, preds):
        total = 1.0
        for pred in preds:
            total *= self.predicate_selectivity(pred)
        return min(1.0, max(0.0, total))

    def _compute(self, op):
        if isinstance(op, PFilter):
            child = self.output_cardinality(op.child)
            return child * self._conjunction_selectivity(op.predicates)
        return op.base_rows
'''


def _cardinality(tmp_path, source):
    path = tmp_path / "cardinality_fixture.py"
    path.write_text(textwrap.dedent(source))
    return verify_cardinality_ast(path)


def test_pi011_missing_nonnegativity_clamp(tmp_path):
    broken = _CARDINALITY_CLEAN.replace(
        "return max(0.0, self._compute(op))",
        "return self._compute(op)")
    findings = _cardinality(tmp_path, broken)
    assert {f.rule for f in findings} == {"PI011"}
    assert "output_cardinality" in findings[0].message


def test_pi011_missing_selectivity_upper_clamp(tmp_path):
    broken = _CARDINALITY_CLEAN.replace(
        "return min(1.0, max(0.0, total))",
        "return max(0.0, total)")
    findings = _cardinality(tmp_path, broken)
    assert {f.rule for f in findings} == {"PI011"}
    assert "monotone" in findings[0].message


def test_pi011_filter_branch_not_multiplicative(tmp_path):
    broken = _CARDINALITY_CLEAN.replace(
        "return child * self._conjunction_selectivity(op.predicates)",
        "return child")
    findings = _cardinality(tmp_path, broken)
    assert {f.rule for f in findings} == {"PI011"}
    assert "_compute" in findings[0].message


def test_cardinality_clean_fixture(tmp_path):
    assert _cardinality(tmp_path, _CARDINALITY_CLEAN) == []


# ---------------------------------------------------------------------------
# PI012 — target transform
# ---------------------------------------------------------------------------

_TARGETS_CLEAN = '''
import numpy as np

MIN_TUPLE_TIME = 1e-15
MAX_TUPLE_TIME = 10.0


def transform_target(t):
    clipped = np.clip(t, MIN_TUPLE_TIME, MAX_TUPLE_TIME)
    return -np.log(clipped)


def inverse_transform(raw):
    return np.exp(-raw)
'''


def _targets(tmp_path, source):
    path = tmp_path / "targets_fixture.py"
    path.write_text(textwrap.dedent(source))
    return verify_target_transform(path)


def test_pi012_zero_lower_bound(tmp_path):
    broken = _TARGETS_CLEAN.replace("MIN_TUPLE_TIME = 1e-15",
                                    "MIN_TUPLE_TIME = 0.0")
    findings = _targets(tmp_path, broken)
    assert {f.rule for f in findings} == {"PI012"}
    assert "diverges" in findings[0].message


def test_pi012_non_literal_bound(tmp_path):
    broken = _TARGETS_CLEAN.replace("MAX_TUPLE_TIME = 10.0",
                                    "MAX_TUPLE_TIME = compute_bound()")
    findings = _targets(tmp_path, broken)
    assert any(f.rule == "PI012" for f in findings)


def test_pi012_missing_clip(tmp_path):
    broken = _TARGETS_CLEAN.replace(
        "    clipped = np.clip(t, MIN_TUPLE_TIME, MAX_TUPLE_TIME)\n"
        "    return -np.log(clipped)",
        "    return -np.log(t)")
    findings = _targets(tmp_path, broken)
    assert {f.rule for f in findings} == {"PI012"}
    assert "clip" in findings[0].message


def test_pi012_inverse_without_exp(tmp_path):
    broken = _TARGETS_CLEAN.replace("return np.exp(-raw)", "return -raw")
    findings = _targets(tmp_path, broken)
    assert {f.rule for f in findings} == {"PI012"}
    assert "inverse" in findings[0].message


def test_targets_clean_fixture(tmp_path):
    assert _targets(tmp_path, _TARGETS_CLEAN) == []


# ---------------------------------------------------------------------------
# the repo itself
# ---------------------------------------------------------------------------

def test_repo_satisfies_every_plan_invariant():
    assert check_plan_invariants() == []


def test_missing_fixture_path_is_typed_error():
    with pytest.raises(CheckError):
        verify_decomposer_ast("/nonexistent/pipelines.py")
