"""Wall-time record for the full `repro-t3 check` run.

CI's perf gate re-runs the suite with a shell timer and fails above
10 s; this test enforces the same budget in-process and writes the
per-analyzer breakdown to ``BENCH_checks.json`` at the repo root
(gitignored, uploaded as a CI artifact) so the cost of each analyzer —
including the interprocedural hotpath pass — is tracked over time.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.checks import run_checks

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_checks.json"

#: CI's wall-clock budget for the whole suite (see .github/workflows).
MAX_SECONDS = 10.0


def test_full_check_run_fits_ci_budget_and_records_timings():
    report = run_checks()
    record = {
        "analyzers": sorted(report.analyzers_run),
        "analyzer_seconds": {name: round(seconds, 4)
                             for name, seconds
                             in sorted(report.timings.items())},
        "total_seconds": round(report.elapsed_seconds, 4),
        "budget_seconds": MAX_SECONDS,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    assert len(report.analyzers_run) == 11
    assert set(report.timings) == set(report.analyzers_run)
    assert report.elapsed_seconds < MAX_SECONDS
