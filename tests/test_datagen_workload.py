"""Tests for workload assembly and benchmarking."""

import numpy as np
import pytest

from repro.datagen.instances import get_instance
from repro.datagen.workload import (
    FIXED_GROUP,
    WorkloadBuilder,
    WorkloadConfig,
    build_corpus_workload,
    workload_statistics,
)
from repro.datagen.structures import QUERY_STRUCTURES


class TestWorkloadBuilder:
    def test_generated_counts(self, toy_instance):
        config = WorkloadConfig(queries_per_structure=2,
                                include_fixed_benchmarks=False)
        queries = WorkloadBuilder(toy_instance, config).build()
        assert len(queries) == 2 * len(QUERY_STRUCTURES)
        groups = {q.group for q in queries}
        assert groups == {s.name for s in QUERY_STRUCTURES}

    def test_fixed_suite_included_for_tpch(self):
        config = WorkloadConfig(queries_per_structure=1)
        queries = WorkloadBuilder(get_instance("tpch_sf1"), config).build()
        fixed = [q for q in queries if q.group == FIXED_GROUP]
        assert len(fixed) == 22

    def test_no_fixed_suite_for_synthetic(self):
        config = WorkloadConfig(queries_per_structure=1)
        queries = WorkloadBuilder(get_instance("financial"), config).build()
        assert all(q.group != FIXED_GROUP for q in queries)

    def test_metadata(self, toy_workload):
        query = toy_workload[0]
        assert query.instance_name == "toy"
        assert query.family == "toy"
        assert query.n_pipelines == len(query.pipelines)
        assert query.median_time > 0

    def test_pipeline_targets_shape(self, toy_workload):
        for query in toy_workload[:10]:
            targets = query.pipeline_targets()
            assert len(targets) == query.n_pipelines
            assert np.all(targets > 0)
            fewer_runs = query.pipeline_targets(n_runs=3)
            assert len(fewer_runs) == query.n_pipelines

    def test_reproducible(self, toy_instance):
        config = WorkloadConfig(queries_per_structure=2,
                                include_fixed_benchmarks=False)
        a = WorkloadBuilder(toy_instance, config).build()
        b = WorkloadBuilder(toy_instance, config).build()
        assert [q.median_time for q in a] == [q.median_time for q in b]

    def test_corpus_builder(self):
        config = WorkloadConfig(queries_per_structure=1,
                                include_fixed_benchmarks=False)
        queries = build_corpus_workload(["financial", "hepatitis"], config)
        instances = {q.instance_name for q in queries}
        assert instances == {"financial", "hepatitis"}

    def test_statistics(self, toy_workload):
        stats = workload_statistics(toy_workload)
        assert stats["n_queries"] == len(toy_workload)
        assert stats["min_time"] <= stats["median_time"] <= stats["max_time"]
        assert stats["mean_pipelines"] >= 1


class TestRuntimeDistribution:
    def test_wide_dynamic_range(self):
        """Figure 6: running times span many orders of magnitude."""
        config = WorkloadConfig(queries_per_structure=4,
                                include_fixed_benchmarks=False)
        queries = WorkloadBuilder(get_instance("tpch_sf10"), config).build()
        times = np.array([q.median_time for q in queries])
        assert times.max() / times.min() > 1e3


class TestExtendedWorkloads:
    def test_extended_workload_builds_and_benchmarks(self, toy_instance):
        config = WorkloadConfig(queries_per_structure=2,
                                include_fixed_benchmarks=False,
                                extended_operators=True)
        queries = WorkloadBuilder(toy_instance, config).build()
        assert len(queries) == 2 * len(QUERY_STRUCTURES)
        assert all(q.median_time > 0 for q in queries)

    def test_extended_workload_trains_t3(self, toy_instance):
        from repro.core.model import T3Config, T3Model
        from repro.trees.boosting import BoostingParams
        config = WorkloadConfig(queries_per_structure=2,
                                include_fixed_benchmarks=False,
                                extended_operators=True)
        queries = WorkloadBuilder(toy_instance, config).build()
        model = T3Model.train(queries, T3Config(
            boosting=BoostingParams(n_rounds=15), compile_to_native=False))
        assert model.evaluate(queries).p50 < 5.0
