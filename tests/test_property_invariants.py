"""Property-based invariants over randomly generated queries.

These pin down structural laws that must hold for *every* query the
generator can produce — the properties T3's correctness rests on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.cardinality import EstimatedCardinalityModel, ExactCardinalityModel
from repro.engine.optimizer import Optimizer
from repro.engine.pipelines import (
    compute_stage_flows,
    decompose_into_pipelines,
    pipeline_input_cardinality,
)
from repro.engine.simulator import ExecutionSimulator
from repro.engine.stages import Stage
from repro.core.features import default_registry
from repro.datagen.querygen import RandomQueryGenerator
from repro.datagen.structures import QUERY_STRUCTURES
from tests.conftest import build_toy_instance

_INSTANCE = build_toy_instance()
_GENERATOR = RandomQueryGenerator(_INSTANCE, seed=99)
_OPTIMIZER = Optimizer(_INSTANCE.schema, _INSTANCE.catalog)
_EXACT = ExactCardinalityModel(_INSTANCE.catalog)
_SIMULATOR = ExecutionSimulator(_INSTANCE.catalog)
_REGISTRY = default_registry()

query_cases = st.tuples(
    st.integers(min_value=0, max_value=len(QUERY_STRUCTURES) - 1),
    st.integers(min_value=0, max_value=30),
)

_SETTINGS = dict(max_examples=60, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _plan(case):
    structure_index, query_index = case
    logical = _GENERATOR.generate(QUERY_STRUCTURES[structure_index],
                                  query_index)
    return _OPTIMIZER.optimize(logical, f"prop_{structure_index}_{query_index}")


@settings(**_SETTINGS)
@given(query_cases)
def test_pipeline_count_matches_breaker_count(case):
    """#pipelines == #build stages + 1 (every build ends one pipeline,
    the root output ends the last)."""
    plan = _plan(case)
    pipelines = decompose_into_pipelines(plan)
    builds = sum(1 for p in pipelines for ref in p.stages
                 if ref.stage is Stage.BUILD)
    assert len(pipelines) == builds + 1


@settings(**_SETTINGS)
@given(query_cases)
def test_stage_partition(case):
    """Pipelines partition the plan's operator stages exactly."""
    plan = _plan(case)
    expected = sum(len(op.stages) for op in plan.operators())
    actual = sum(p.n_stages for p in decompose_into_pipelines(plan))
    assert actual == expected


@settings(**_SETTINGS)
@given(query_cases)
def test_flows_are_conserved_and_nonnegative(case):
    plan = _plan(case)
    for pipeline in decompose_into_pipelines(plan):
        flows = compute_stage_flows(pipeline, _EXACT)
        for previous, current in zip(flows, flows[1:]):
            assert current.tuples_in == pytest.approx(previous.tuples_out)
        for flow in flows:
            assert flow.tuples_in >= 0 and flow.tuples_out >= 0


@settings(**_SETTINGS)
@given(query_cases)
def test_feature_vectors_finite_nonnegative_fixed_size(case):
    plan = _plan(case)
    vectors, cards = _REGISTRY.vectors_for_plan(plan, _EXACT)
    assert vectors.shape[1] == _REGISTRY.n_features
    assert np.isfinite(vectors).all()
    assert (vectors >= 0).all()
    assert (cards >= 0).all()


@settings(**_SETTINGS)
@given(query_cases)
def test_estimated_model_also_featurizes(case):
    """The same plan must featurize under estimated cardinalities."""
    plan = _plan(case)
    model = EstimatedCardinalityModel(_INSTANCE.catalog)
    vectors, _ = _REGISTRY.vectors_for_plan(plan, model)
    assert np.isfinite(vectors).all()


@settings(**_SETTINGS)
@given(query_cases)
def test_simulated_times_positive_and_additive(case):
    plan = _plan(case)
    pipelines = decompose_into_pipelines(plan)
    times = [_SIMULATOR.pipeline_time(p) for p in pipelines]
    assert all(t > 0 for t in times)
    assert _SIMULATOR.query_time(plan) == pytest.approx(sum(times))


@settings(**_SETTINGS)
@given(query_cases)
def test_output_cardinality_bounded_by_cross_product(case):
    """No operator output may exceed the cross product of base tables
    scaled by declared fan-outs (sanity bound on the exact model)."""
    plan = _plan(case)
    bound = 1.0
    for table in plan.base_tables():
        bound *= max(_INSTANCE.catalog.row_count(table), 1)
    for op in plan.operators():
        assert _EXACT.output_cardinality(op) <= bound * 64 + 1


@settings(**_SETTINGS)
@given(query_cases)
def test_input_cardinality_positive_for_table_pipelines(case):
    plan = _plan(case)
    for pipeline in decompose_into_pipelines(plan):
        assert pipeline_input_cardinality(pipeline, _EXACT) >= 0
