"""Tests for the online model lifecycle: observation log, drift,
incremental retraining, and the shadow/canary state machine."""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.ablation import TargetMode
from repro.core.model import T3Config, T3Model
from repro.errors import (
    ConfigurationError,
    InjectedFaultError,
    TrainingError,
)
from repro.faults import FaultPlan, FaultSpec, clear_faults, install_plan
from repro.lifecycle import (
    DriftScenario,
    LifecycleConfig,
    LifecycleManager,
    LifecyclePhase,
    ObservationLog,
    ObservationRecord,
    RetrainConfig,
    RetrainJob,
    generate_drift_sqls,
    observation_matrices,
    shift_instance,
)
from repro.serving import ModelRegistry, PredictionService, ServingConfig
from repro.trees.boosting import BoostingParams


# ---------------------------------------------------------------------------
# Shared fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def toy_instance():
    from tests.conftest import build_toy_instance
    return build_toy_instance()


@pytest.fixture(scope="module")
def toy_model(toy_instance):
    from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
    workload = WorkloadBuilder(
        toy_instance, WorkloadConfig(queries_per_structure=3,
                                     include_fixed_benchmarks=False)).build()
    return T3Model.train(workload, T3Config(
        boosting=BoostingParams(n_rounds=15, objective="mape",
                                validation_fraction=0.2),
        compile_to_native=False))


@pytest.fixture(autouse=True)
def _clean_faults():
    clear_faults()
    yield
    clear_faults()


def make_record(n_pipelines: int = 2, n_features: int = 4,
                observed: float = 1.0, sequence: int = -1,
                fill: float = 0.5) -> ObservationRecord:
    return ObservationRecord(
        instance="toy",
        vectors=np.full((n_pipelines, n_features), fill),
        cards=np.full(n_pipelines, 100.0),
        predicted_seconds=0.8,
        pipeline_seconds=tuple(0.4 for _ in range(n_pipelines)),
        observed_seconds=observed,
        model_key="default@1",
        sequence=sequence)


# ---------------------------------------------------------------------------
# Observation log
# ---------------------------------------------------------------------------


class TestObservationLog:
    def test_roundtrip_in_order(self, tmp_path):
        with ObservationLog(tmp_path) as log:
            for i in range(5):
                assert log.append(make_record(observed=float(i + 1))) == i
            records = log.read_all()
        assert [r.sequence for r in records] == [0, 1, 2, 3, 4]
        assert [r.observed_seconds for r in records] == [1, 2, 3, 4, 5]
        np.testing.assert_allclose(records[0].vectors,
                                   np.full((2, 4), 0.5))
        np.testing.assert_allclose(records[0].cards, [100.0, 100.0])

    def test_validation_rejects_garbage(self, tmp_path):
        with ObservationLog(tmp_path) as log:
            with pytest.raises(ConfigurationError):
                log.append(make_record(observed=-1.0))
            bad = ObservationRecord(
                instance="toy", vectors=np.zeros(4), cards=None,
                predicted_seconds=1.0, pipeline_seconds=(1.0,),
                observed_seconds=1.0, model_key="m@1")
            with pytest.raises(ConfigurationError):
                log.append(bad)
            assert log.sequence == 0

    def test_rotation_keeps_order(self, tmp_path):
        with ObservationLog(tmp_path, max_segment_bytes=600) as log:
            for i in range(12):
                log.append(make_record(observed=float(i)))
            stats = log.stats()
            assert stats["segments"] > 1
            assert stats["rotations"] == stats["segments"] - 1
            got = [r.observed_seconds for r in log.read_all()]
        assert got == [float(i) for i in range(12)]

    def test_reopen_resumes_sequence(self, tmp_path):
        with ObservationLog(tmp_path) as log:
            for _ in range(3):
                log.append(make_record())
        with ObservationLog(tmp_path) as log:
            assert log.sequence == 3
            assert log.append(make_record()) == 3
            assert len(log.read_all()) == 4

    def test_torn_tail_quarantined_and_truncated(self, tmp_path):
        with ObservationLog(tmp_path) as log:
            for _ in range(3):
                log.append(make_record())
            [segment] = log.segments()
        with segment.open("ab") as handle:    # simulate a dying writer
            handle.write(b"T3LG\xff\xff\xff\xff half a frame")
        with ObservationLog(tmp_path) as log:
            assert log.torn_tails_quarantined == 1
            assert log.sequence == 3
            assert len(log.read_all()) == 3
            assert log.append(make_record()) == 3
        torn = list(tmp_path.glob("*.torn-*"))
        assert len(torn) == 1
        assert torn[0].read_bytes().startswith(b"T3LG\xff")

    def test_corrupt_crc_drops_last_record(self, tmp_path):
        with ObservationLog(tmp_path) as log:
            for _ in range(3):
                log.append(make_record())
            [segment] = log.segments()
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF                      # flip a payload byte
        segment.write_bytes(bytes(data))
        with ObservationLog(tmp_path) as log:
            assert log.torn_tails_quarantined == 1
            assert log.sequence == 2
            assert len(log.read_all()) == 2

    def test_injected_fault_self_heals(self, tmp_path):
        install_plan(FaultPlan((FaultSpec("lifecycle.log_append", "raise",
                                          max_fires=1),)))
        with ObservationLog(tmp_path) as log:
            with pytest.raises(InjectedFaultError):
                log.append(make_record())
            # the failed append left no half-frame behind
            assert log.sequence == 0
            assert log.append(make_record()) == 0
            assert len(log.read_all()) == 1
        with ObservationLog(tmp_path) as log:   # nothing torn on disk
            assert log.torn_tails_quarantined == 0
            assert log.sequence == 1

    def test_closed_log_refuses_appends(self, tmp_path):
        log = ObservationLog(tmp_path)
        log.close()
        with pytest.raises(ConfigurationError):
            log.append(make_record())
        log.close()   # idempotent


# ---------------------------------------------------------------------------
# Crash recovery: the writer dies mid-frame (satellite: kill at the
# fault site with os._exit, then recover in a fresh process)
# ---------------------------------------------------------------------------


_CRASH_WRITER = textwrap.dedent("""
    import os, sys
    import numpy as np
    from repro.lifecycle import ObservationLog, ObservationRecord

    class ExitInjector:
        def __init__(self, after):
            self.calls = 0
            self.after = after
        def fire(self, site):
            if site != "lifecycle.log_append":
                return
            self.calls += 1
            if self.calls > self.after:
                os._exit(17)    # die mid-frame, no cleanup, no atexit

    record = ObservationRecord(
        instance="toy", vectors=np.full((2, 4), 0.5),
        cards=np.full(2, 100.0), predicted_seconds=0.8,
        pipeline_seconds=(0.4, 0.4), observed_seconds=1.0,
        model_key="default@1")
    log = ObservationLog(sys.argv[1], injector=ExitInjector(after=3))
    for _ in range(10):
        log.append(record)
    raise SystemExit("writer survived past the crash point")
""")


class TestCrashRecovery:
    def test_writer_killed_mid_append_recovers(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _CRASH_WRITER, str(tmp_path)],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 17, proc.stderr
        # the 4th append died between flush(header+half) and the rest:
        # a genuinely torn frame is on disk
        [segment] = sorted(tmp_path.glob("obs-*.seg"))
        raw_size = segment.stat().st_size
        with ObservationLog(tmp_path) as log:
            assert log.torn_tails_quarantined == 1
            assert log.sequence == 3          # last *committed* record
            records = log.read_all()
            assert [r.sequence for r in records] == [0, 1, 2]
            # the log is immediately writable again
            assert log.append(make_record()) == 3
        assert segment.stat().st_size >= raw_size  # truncated, re-grown
        torn = list(tmp_path.glob("*.torn-*"))
        assert len(torn) == 1 and torn[0].stat().st_size > 0


# ---------------------------------------------------------------------------
# Drift scenarios
# ---------------------------------------------------------------------------


class TestDrift:
    def test_sqls_deterministic_per_seed(self, toy_instance):
        a = generate_drift_sqls(toy_instance, n_queries=12, seed=3)
        b = generate_drift_sqls(toy_instance, n_queries=12, seed=3)
        c = generate_drift_sqls(toy_instance, n_queries=12, seed=4)
        assert a == b
        assert a != c
        assert len(a) == 12
        assert any("WHERE" in sql and "=" in sql for sql in a)

    def test_sqls_parse_against_the_instance(self, toy_instance):
        from repro.engine.sqlparser import parse_sql
        for sql in generate_drift_sqls(toy_instance, n_queries=9, seed=1):
            parse_sql(sql, toy_instance.schema, toy_instance.catalog)

    def test_shift_instance_scales_rows(self, toy_instance):
        shifted = shift_instance(toy_instance, 2.0, seed=5)
        assert shifted.name == toy_instance.name
        assert shifted.schema is toy_instance.schema
        for table in toy_instance.catalog.tables_with_stats():
            assert shifted.catalog.row_count(table) == \
                2 * toy_instance.catalog.row_count(table)
        with pytest.raises(ConfigurationError):
            shift_instance(toy_instance, 0.0)

    def test_speed_factor_scales_ground_truth(self, toy_instance):
        scenario = DriftScenario(toy_instance, speed_factor=4.0, seed=7)
        sql = scenario.request(0)
        before = scenario.observe(sql)
        scenario.shift()
        assert scenario.shifted_active
        after = scenario.observe(sql)
        assert after == pytest.approx(before / 4.0, rel=1e-9)
        scenario.reset()
        assert scenario.observe(sql) == pytest.approx(before, rel=1e-12)

    def test_request_stream_is_replayable(self, toy_instance):
        a = DriftScenario(toy_instance, seed=11)
        b = DriftScenario(toy_instance, seed=11)
        assert [a.next_request() for _ in range(40)] == \
            [b.request(i) for i in range(40)]
        # every query appears once per cycle through the mix
        n = len(a.sqls)
        cycle = [a.request(i) for i in range(n)]
        assert sorted(cycle) == sorted(a.sqls)


# ---------------------------------------------------------------------------
# Registry hot-swap pointers
# ---------------------------------------------------------------------------


class TestRegistryHotSwap:
    @pytest.fixture()
    def registry(self, toy_model):
        registry = ModelRegistry(compile_native=False)
        registry.register(toy_model, "m")
        registry.register(toy_model, "m")
        return registry

    def test_activate_pins_against_newer_versions(self, registry,
                                                  toy_model):
        registry.activate("m", 1)
        registry.register(toy_model, "m")       # version 3 appears
        assert registry.get("m").version == 1   # pin holds
        assert registry.active_version("m") == 1
        registry.activate("m", 3)
        assert registry.get("m").version == 3

    def test_canary_draw_routes_by_fraction(self, registry):
        registry.activate("m", 1)
        registry.set_canary("m", 2, 0.25)
        assert registry.get("m", canary_draw=0.1).version == 2
        assert registry.get("m", canary_draw=0.25).version == 1
        assert registry.get("m", canary_draw=0.9).version == 1
        assert registry.get("m").version == 1   # no draw, no canary
        assert registry.canary_info("m") == (2, 0.25)

    def test_explicit_version_bypasses_routing(self, registry):
        registry.activate("m", 1)
        registry.set_canary("m", 2, 1.0)
        assert registry.get("m", version=1).version == 1

    def test_promote_clears_canary(self, registry):
        registry.activate("m", 1)
        registry.set_canary("m", 2, 0.5)
        entry = registry.activate("m", 2)
        assert entry.version == 2
        assert registry.canary_info("m") is None
        assert registry.get("m", canary_draw=0.0).version == 2

    def test_rollback_is_clear_canary(self, registry):
        registry.activate("m", 1)
        registry.set_canary("m", 2, 0.5)
        assert registry.clear_canary("m") == 2
        assert registry.canary_info("m") is None
        assert registry.get("m", canary_draw=0.0).version == 1
        assert registry.clear_canary("m") is None   # idempotent

    def test_cannot_canary_the_active_version(self, registry):
        registry.activate("m", 2)
        with pytest.raises(ConfigurationError):
            registry.set_canary("m", 2, 0.5)
        with pytest.raises(ConfigurationError):
            registry.set_canary("m", 1, 1.5)

    def test_status_reports_routing(self, registry):
        registry.activate("m", 1)
        registry.set_canary("m", 2, 0.2)
        status = registry.status()["m"]
        assert status["versions"] == 2
        assert status["active"] == 1 and status["pinned"]
        assert status["canary"] == {"version": 2, "fraction": 0.2}

    def test_register_dedupes_identical_artifacts(self, registry,
                                                  toy_model):
        first = registry.register(toy_model, "dup", content_digest="abc")
        again = registry.register(toy_model, "dup", content_digest="abc")
        assert again is first
        assert registry.register(toy_model, "dup",
                                 content_digest="def").version == 2

    def test_entries_carry_model_digest(self, registry, toy_model):
        entry = registry.get("m")
        assert entry.model_digest == toy_model.model_digest()
        assert entry.describe()["model_digest"] == entry.model_digest


# ---------------------------------------------------------------------------
# Retraining from the log
# ---------------------------------------------------------------------------


class TestRetrain:
    def test_observation_matrices_per_tuple(self):
        records = [make_record(observed=2.0, sequence=i)
                   for i in range(3)]
        X, y = observation_matrices(records, TargetMode.PER_TUPLE)
        assert X.shape == (6, 4)
        assert y.shape == (6,)
        assert np.all(np.isfinite(y))

    def test_observation_matrices_per_query(self):
        records = [make_record(observed=2.0)]
        X, y = observation_matrices(records, TargetMode.PER_QUERY)
        assert X.shape == (2, 4) and y.shape == (1,)
        with pytest.raises(TrainingError):
            observation_matrices([], TargetMode.PER_QUERY)

    def test_degenerate_pipeline_seconds_split_uniformly(self):
        record = ObservationRecord(
            instance="toy", vectors=np.full((2, 4), 0.5),
            cards=np.full(2, 10.0), predicted_seconds=0.0,
            pipeline_seconds=(0.0, 0.0), observed_seconds=3.0,
            model_key="m@1")
        _, y = observation_matrices([record], TargetMode.PER_PIPELINE)
        assert y[0] == pytest.approx(y[1])      # uniform 1.5 / 1.5

    def test_incremental_consume_reads_each_record_once(self, tmp_path,
                                                        toy_model):
        with ObservationLog(tmp_path) as log:
            job = RetrainJob(log, toy_model,
                             RetrainConfig(rounds=5, min_records=1))
            for _ in range(4):
                log.append(make_record())
            log.rotate()                        # seal → process-map path
            assert job.consume() == 4
            assert job.consume() == 0           # cursor advanced
            for _ in range(3):
                log.append(make_record())
            assert job.consume() == 3           # partial-tail path
            assert job.records_consumed == 7

    def test_candidate_lineage_and_determinism(self, tmp_path, toy_model):
        with ObservationLog(tmp_path) as log:
            vectors = np.random.default_rng(0).random(
                (2, toy_model.booster.n_features))
            for i in range(24):
                log.append(ObservationRecord(
                    instance="toy", vectors=vectors,
                    cards=np.full(2, 50.0), predicted_seconds=1.0,
                    pipeline_seconds=(0.5, 0.5),
                    observed_seconds=1.0 + 0.01 * i, model_key="d@1"))
            config = RetrainConfig(rounds=5, min_records=16)
            job_a = RetrainJob(log, toy_model, config)
            job_a.consume()
            job_b = RetrainJob(log, toy_model, config)
            job_b.consume()
            a, b = job_a.train_candidate(), job_b.train_candidate()
        assert a.lineage == toy_model.model_digest()
        assert a.model_digest() == b.model_digest()   # replayable
        assert a.model_digest() != toy_model.model_digest()
        assert not a.is_compiled     # registry warmup owns compilation

    def test_min_records_enforced(self, tmp_path, toy_model):
        with ObservationLog(tmp_path) as log:
            log.append(make_record())
            job = RetrainJob(log, toy_model,
                             RetrainConfig(rounds=5, min_records=10))
            job.consume()
            with pytest.raises(TrainingError):
                job.train_candidate()


# ---------------------------------------------------------------------------
# The lifecycle state machine, end to end
# ---------------------------------------------------------------------------


def build_lifecycle(instance, model, log_dir, seed=7, **overrides):
    scenario = DriftScenario(instance, speed_factor=4.0, seed=seed)
    registry = ModelRegistry(compile_native=False)
    registry.register(model, "default")
    service = PredictionService(
        registry, ServingConfig(plan_cache_size=32, compile_native=False),
        instance_resolver=scenario.resolver)
    settings = dict(
        retrain_after=30, shadow_samples=12, canary_samples=12,
        canary_fraction=0.2, min_canary_detect=4,
        retrain=RetrainConfig(rounds=12, min_records=16), seed=seed)
    settings.update(overrides)
    config = LifecycleConfig(**settings)
    manager = LifecycleManager(service, ObservationLog(log_dir), config)
    return scenario, service, manager


def drive(scenario, service, n, failures=None):
    """Feed ``n`` observations through the service; returns sequences."""
    sequences = []
    for _ in range(n):
        sql = scenario.next_request()
        truth = scenario.observe(sql)
        try:
            ack = service.observe(sql, scenario.base.name, truth)
        except InjectedFaultError:
            if failures is None:
                raise
            failures.append(sql)
            continue
        sequences.append(ack["sequence"])
    return sequences


class TestLifecycleEndToEnd:
    def test_drift_retrain_canary_promote(self, toy_instance, toy_model,
                                          tmp_path):
        scenario, service, manager = build_lifecycle(
            toy_instance, toy_model, tmp_path)
        assert manager.phase is LifecyclePhase.OBSERVING
        assert manager.active_entry.version == 1
        scenario.shift()                     # the machine got 4x faster
        drive(scenario, service, 60)
        phases = [(t["from"], t["to"]) for t in manager.transitions]
        assert ("observing", "retraining") in phases
        assert ("retraining", "shadow") in phases
        assert ("shadow", "canary") in phases
        assert ("canary", "observing") in phases
        promoted = [t for t in manager.transitions
                    if t["reason"] == "canary promoted"]
        assert promoted, manager.transitions
        assert manager.active_entry.version == 2
        assert service.registry.active_version("default") == 2
        assert service.registry.canary_info("default") is None
        assert manager.last_swap_seconds is not None
        assert manager.last_swap_seconds < 0.1   # a pointer write
        # the audit trail reaches /healthz and /metrics
        health = service.health()
        assert health["lifecycle"]["active"] == "default@2"
        assert health["routing"]["default"]["pinned"]
        text = service.metrics_text()
        assert "t3_lifecycle_promotions_total 1" in text
        assert "t3_lifecycle_active_version 2" in text
        manager.log.close()

    def test_replay_is_bit_identical(self, toy_instance, toy_model,
                                     tmp_path):
        runs = []
        for name in ("a", "b"):
            scenario, service, manager = build_lifecycle(
                toy_instance, toy_model, tmp_path / name)
            scenario.shift()
            drive(scenario, service, 60)
            runs.append((manager.transitions,
                         manager.active_entry.model.model_digest(),
                         manager.log.stats()))
            manager.log.close()
        assert runs[0] == runs[1]

    def test_canary_regression_rolls_back(self, toy_instance, toy_model,
                                          tmp_path):
        scenario, service, manager = build_lifecycle(
            toy_instance, toy_model, tmp_path)
        scenario.shift()
        # run until the candidate (trained on the shifted regime) is
        # serving canary traffic
        for _ in range(200):
            if manager.phase is LifecyclePhase.CANARY:
                break
            drive(scenario, service, 1)
        assert manager.phase is LifecyclePhase.CANARY
        # ground truth reverts: the candidate is now the wrong model
        scenario.reset()
        detect = 0
        for _ in range(manager.config.canary_samples + 1):
            if manager.phase is not LifecyclePhase.CANARY:
                break
            drive(scenario, service, 1)
            detect += 1
        rollbacks = [t for t in manager.transitions
                     if t["reason"] == "canary error regressed"]
        assert rollbacks, manager.transitions
        # the pointer never moved; rollback was clearing the canary
        assert manager.active_entry.version == 1
        assert service.registry.active_version("default") == 1
        assert service.registry.canary_info("default") is None
        assert manager.last_detect_samples is not None
        assert manager.last_detect_samples <= manager.config.canary_samples
        assert detect <= manager.config.canary_samples
        # the rejected candidate stays addressable for diagnosis
        assert service.registry.get("default", version=2) is not None
        assert "t3_lifecycle_rollbacks_total 1" in service.metrics_text()
        manager.log.close()

    def test_canary_routing_reaches_requests(self, toy_instance,
                                             toy_model, tmp_path):
        scenario, service, manager = build_lifecycle(
            toy_instance, toy_model, tmp_path, canary_fraction=1.0)
        scenario.shift()
        for _ in range(200):
            if manager.phase is LifecyclePhase.CANARY:
                break
            drive(scenario, service, 1)
        assert manager.phase is LifecyclePhase.CANARY
        sql = scenario.request(0)
        result = service.predict(sql, "toy")
        assert result.model_version == 2        # fraction=1.0 → canary
        pinned = service.predict(sql, "toy", version=1)
        assert pinned.model_version == 1        # explicit pin bypasses
        assert "t3_serving_canary_requests_total 1" in \
            service.metrics_text()
        # observations pair ground truth with the *active* model even
        # while a canary serves traffic
        ack = service.observe(sql, "toy", scenario.observe(sql))
        assert ack["version"] == 1
        manager.log.close()

    def test_chaos_append_faults_never_corrupt_the_log(
            self, toy_instance, toy_model, tmp_path):
        scenario, service, manager = build_lifecycle(
            toy_instance, toy_model, tmp_path)
        install_plan(FaultPlan(
            (FaultSpec("lifecycle.log_append", "raise",
                       probability=0.25),), seed=13))
        scenario.shift()
        failures = []
        sequences = drive(scenario, service, 60, failures=failures)
        clear_faults()
        assert failures                          # chaos actually fired
        assert len(sequences) + len(failures) == 60
        # every acknowledged sequence is durable and none is torn
        assert sequences == list(range(len(sequences)))
        manager.log.close()
        with ObservationLog(tmp_path) as log:
            assert log.torn_tails_quarantined == 0
            assert log.sequence == len(sequences)
        # prediction traffic never saw a lifecycle fault
        assert service.predict(scenario.request(0), "toy") is not None


# ---------------------------------------------------------------------------
# The service-level observation hook
# ---------------------------------------------------------------------------


class TestServiceObserve:
    @pytest.fixture()
    def service(self, toy_instance, toy_model):
        from repro.errors import SchemaError

        def resolve(name):
            if name == "toy":
                return toy_instance
            raise SchemaError(f"unknown instance {name!r}")
        registry = ModelRegistry(compile_native=False)
        registry.register(toy_model, "default")
        return PredictionService(
            registry, ServingConfig(plan_cache_size=16,
                                    compile_native=False),
            instance_resolver=resolve)

    SQL = "SELECT count(*) FROM orders WHERE o_total <= 500"

    def test_observe_without_lifecycle_is_an_echo(self, service):
        ack = service.observe(self.SQL, "toy", 0.5)
        assert ack["sequence"] is None
        assert ack["lifecycle"] is None
        assert ack["model"] == "default" and ack["version"] == 1
        assert ack["qerror"] >= 1.0
        assert "t3_serving_observations_total 1" in service.metrics_text()

    def test_observe_validates_observed_seconds(self, service):
        with pytest.raises(ConfigurationError):
            service.observe(self.SQL, "toy", -0.1)
        with pytest.raises(ConfigurationError):
            service.observe(self.SQL, "toy", float("nan"))

    def test_invalidate_instance_drops_cached_plans(self, service):
        service.predict(self.SQL, "toy")
        service.predict(self.SQL, "toy")
        stats = service._plan_cache.stats
        assert stats.hits >= 1
        dropped = service.invalidate_instance("toy")
        assert dropped >= 1
        assert service.predict(self.SQL, "toy") is not None


class TestObserveHTTP:
    def test_observe_endpoint(self, toy_instance, toy_model):
        import json
        from urllib.request import Request, urlopen
        from urllib.error import HTTPError
        from repro.errors import SchemaError
        from repro.serving import ServingServer

        def resolve(name):
            if name == "toy":
                return toy_instance
            raise SchemaError(f"unknown instance {name!r}")
        registry = ModelRegistry(compile_native=False)
        registry.register(toy_model, "default")
        service = PredictionService(
            registry, ServingConfig(compile_native=False),
            instance_resolver=resolve)

        def post(payload):
            body = json.dumps(payload).encode()
            return urlopen(Request(
                f"{server.url}/observe", data=body,
                headers={"Content-Type": "application/json"}), timeout=10)

        with ServingServer(service, port=0) as server:
            with post({"sql": TestServiceObserve.SQL, "instance": "toy",
                       "observed_seconds": 0.25}) as response:
                ack = json.loads(response.read())
            assert ack["model"] == "default"
            assert ack["observed_seconds"] == 0.25
            assert ack["sequence"] is None
            with pytest.raises(HTTPError) as err:
                post({"sql": TestServiceObserve.SQL, "instance": "toy"})
            assert err.value.code == 400
            with pytest.raises(HTTPError) as err:
                post({"sql": TestServiceObserve.SQL, "instance": "toy",
                      "observed_seconds": True})
            assert err.value.code == 400
