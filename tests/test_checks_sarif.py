"""SARIF rendering: schema shape, suppressions, driver integration."""

from __future__ import annotations

import json

from repro.checks import RULES, run_checks
from repro.checks.findings import Finding, Severity
from repro.checks.sarif import SARIF_SCHEMA, SARIF_VERSION, render_sarif


def _finding(rule="LK002", path="src/repro/serving/x.py", line=10,
             severity=Severity.ERROR, message="shared state unguarded"):
    return Finding(rule, severity, path, line, message)


def _render(findings=(), suppressed=(), rules=None):
    return json.loads(render_sarif(list(findings), list(suppressed),
                                   rules if rules is not None else RULES))


def test_document_skeleton():
    doc = _render()
    assert doc["version"] == SARIF_VERSION
    assert doc["$schema"] == SARIF_SCHEMA
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-t3-check"
    assert run["results"] == []
    assert run["columnKind"] == "utf16CodeUnits"


def test_full_rule_table_is_embedded():
    driver = _render()["runs"][0]["tool"]["driver"]
    ids = [rule["id"] for rule in driver["rules"]]
    assert ids == sorted(RULES)
    by_id = {rule["id"]: rule for rule in driver["rules"]}
    assert (by_id["LK003"]["shortDescription"]["text"]
            == RULES["LK003"])


def test_result_location_and_level():
    doc = _render(findings=[_finding()])
    (result,) = doc["runs"][0]["results"]
    assert result["ruleId"] == "LK002"
    assert result["level"] == "error"
    assert result["message"]["text"] == "shared state unguarded"
    physical = result["locations"][0]["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == "src/repro/serving/x.py"
    assert physical["region"]["startLine"] == 10
    # ruleIndex points back into the embedded rule table.
    table = doc["runs"][0]["tool"]["driver"]["rules"]
    assert table[result["ruleIndex"]]["id"] == "LK002"


def test_warning_severity_maps_to_warning_level():
    doc = _render(findings=[_finding(rule="EA005",
                                     severity=Severity.WARNING)])
    assert doc["runs"][0]["results"][0]["level"] == "warning"


def test_whole_file_findings_omit_region():
    doc = _render(findings=[_finding(line=0)])
    physical = doc["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"]
    assert "region" not in physical


def test_suppressed_findings_carry_suppressions():
    doc = _render(findings=[_finding(rule="PL001")],
                  suppressed=[_finding(rule="LK002")])
    results = doc["runs"][0]["results"]
    assert len(results) == 2
    live = next(r for r in results if r["ruleId"] == "PL001")
    muted = next(r for r in results if r["ruleId"] == "LK002")
    assert "suppressions" not in live
    assert muted["suppressions"][0]["kind"] == "external"
    assert "checks_baseline.toml" in muted["suppressions"][0]["justification"]


def test_driver_report_renders_sarif():
    report = run_checks(rules=["LK"])
    doc = json.loads(report.render("sarif"))
    assert doc["version"] == SARIF_VERSION
    # Repo is clean under the concurrency analyzer: no results, but the
    # complete rule table still ships for code-scanning ingestion.
    assert doc["runs"][0]["results"] == []
    assert len(doc["runs"][0]["tool"]["driver"]["rules"]) == len(RULES)
