"""Feature-schema, lock-discipline, lint, baseline, and driver tests.

Seeded-violation sources prove each analyzer actually fires; the
repo-level runs prove the codebase itself is clean.
"""

from __future__ import annotations

import json

import pytest

from repro.checks import (
    Baseline,
    Finding,
    Severity,
    Suppression,
    check_feature_schema,
    check_lint,
    check_lock_discipline,
    run_checks,
)
from repro.checks.findings import write_baseline
from repro.checks.lint import allowed_exception_names, lint_source
from repro.errors import CheckError

# ---------------------------------------------------------------------------
# lock discipline
# ---------------------------------------------------------------------------

_LOCK_VIOLATIONS = '''
import threading

class Sloppy:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._total = 0

    def hit(self):
        with self._lock:
            self._hits += 1

    def hit_unsafely(self):
        self._hits += 1          # LK001: guarded in hit(), not here

    def add(self, n):
        self._total = self._total + n   # LK002: never guarded
'''

_LOCK_CLEAN = '''
import threading

class Tidy:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._done = threading.Event()

    def hit(self):
        with self._lock:
            self._hits += 1

    def snapshot(self):
        with self._lock:
            return self._hits

    def finish(self):
        self._done.set()         # call receiver, not a write
'''


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


def test_lockcheck_flags_seeded_violations(tmp_path):
    path = _write(tmp_path, "sloppy.py", _LOCK_VIOLATIONS)
    findings = check_lock_discipline(paths=[path])
    rules = {f.rule for f in findings}
    assert rules == {"LK001", "LK002"}
    assert any("_hits" in f.message for f in findings)
    assert any("_total" in f.message for f in findings)
    assert all(f.line > 0 for f in findings)


def test_lockcheck_accepts_disciplined_class(tmp_path):
    path = _write(tmp_path, "tidy.py", _LOCK_CLEAN)
    assert check_lock_discipline(paths=[path]) == []


def test_lockcheck_missing_path_is_typed_error():
    with pytest.raises(CheckError):
        check_lock_discipline(paths=["/nonexistent/nowhere.py"])


def test_serving_layer_is_lock_clean():
    assert check_lock_discipline() == []


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------

_LINT_VIOLATIONS = '''
import numpy as np

def awful(items=[]):
    print(items)
    try:
        raise ValueError("untyped")
    except:
        pass
    rng = np.random.default_rng()
    return np.random.rand(3), rng
'''


def test_lint_flags_every_seeded_rule():
    findings = lint_source(_LINT_VIOLATIONS, "somewhere.py",
                           allowed_exception_names())
    rules = {f.rule for f in findings}
    assert rules == {"PL001", "PL002", "PL003", "PL004", "PL005"}
    assert sum(1 for f in findings if f.rule == "PL005") == 2


def test_lint_allows_local_reproerror_subclasses():
    source = (
        "from ..errors import PlanError\n"
        "class LocalError(PlanError):\n"
        "    pass\n"
        "class DeeperError(LocalError):\n"
        "    pass\n"
        "def f():\n"
        "    raise DeeperError('typed enough')\n")
    findings = lint_source(source, "somewhere.py", allowed_exception_names())
    assert findings == []


def test_lint_exempts_process_edges():
    source = "def f():\n    raise SystemExit(2)\n"
    assert lint_source(source, "cli.py", allowed_exception_names()) == []
    flagged = lint_source(source, "core/model.py", allowed_exception_names())
    assert {f.rule for f in flagged} == {"PL001"}


def test_repo_passes_its_own_lint():
    assert check_lint() == []


# ---------------------------------------------------------------------------
# feature schema
# ---------------------------------------------------------------------------

def test_repo_feature_schema_is_clean():
    assert check_feature_schema() == []


def test_model_file_drift_detected(tmp_path):
    stale = tmp_path / "stale_model.json"
    stale.write_text(json.dumps({
        "model": {"n_features": 3},
        "feature_names": ["bogus_a", "bogus_b"],
    }))
    findings = check_feature_schema(model_path=str(stale))
    rules = {f.rule for f in findings}
    assert "FS004" in rules  # wrong n_features
    assert "FS003" in rules  # diverging names


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def _finding(rule="LK002", path="src/repro/serving/x.py", line=10):
    return Finding(rule, Severity.ERROR, path, line, "message")


def test_baseline_splits_suppressed_findings():
    baseline = Baseline([Suppression(rule="LK002",
                                     path="src/repro/serving/x.py")])
    new, suppressed = baseline.split([_finding(), _finding(rule="PL001")])
    assert [f.rule for f in new] == ["PL001"]
    assert [f.rule for f in suppressed] == ["LK002"]


def test_baseline_wildcard_and_line_matching():
    anywhere = Baseline([Suppression(rule="*", path=None, line=None)])
    assert anywhere.is_suppressed(_finding())
    pinned = Baseline([Suppression(rule="LK002", line=11)])
    assert not pinned.is_suppressed(_finding(line=10))
    assert pinned.is_suppressed(_finding(line=11))


def test_baseline_toml_round_trip(tmp_path):
    path = tmp_path / "baseline.toml"
    write_baseline([_finding(), _finding(rule="PL004", line=3)], path)
    loaded = Baseline.load(path)
    assert loaded.is_suppressed(_finding())
    assert loaded.is_suppressed(_finding(rule="PL004", line=3))
    assert not loaded.is_suppressed(_finding(rule="CG005"))


def test_baseline_load_missing_file_is_typed_error(tmp_path):
    with pytest.raises(CheckError):
        Baseline.load(tmp_path / "absent.toml")


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def test_run_checks_repo_is_clean():
    report = run_checks()
    assert report.findings == []
    assert report.exit_code == 0
    assert set(report.analyzers_run) == {"codegen", "feature-schema",
                                         "lockcheck", "lint"}


def test_run_checks_rule_filter_limits_analyzers():
    report = run_checks(rules=["LK"])
    assert report.analyzers_run == ["lockcheck"]
    report = run_checks(rules=["CG005", "PL001"])
    assert set(report.analyzers_run) == {"codegen", "lint"}


def test_run_checks_unknown_rule_is_typed_error():
    with pytest.raises(CheckError):
        run_checks(rules=["ZZ999"])


def test_run_checks_nonzero_exit_on_seeded_drift(tmp_path):
    stale = tmp_path / "stale_model.json"
    stale.write_text(json.dumps({"model": {"n_features": 3}}))
    report = run_checks(rules=["FS"], model_path=str(stale))
    assert report.exit_code == 1
    assert {f.rule for f in report.findings} == {"FS004"}


def test_run_checks_baseline_restores_zero_exit(tmp_path):
    stale = tmp_path / "stale_model.json"
    stale.write_text(json.dumps({"model": {"n_features": 3}}))
    baseline = Baseline([Suppression(rule="FS004")])
    report = run_checks(rules=["FS"], model_path=str(stale),
                        baseline=baseline)
    assert report.exit_code == 0
    assert [f.rule for f in report.suppressed] == ["FS004"]


def test_report_json_rendering(tmp_path):
    stale = tmp_path / "stale_model.json"
    stale.write_text(json.dumps({"model": {"n_features": 3}}))
    report = run_checks(rules=["FS"], model_path=str(stale))
    payload = json.loads(report.render("json"))
    assert payload["counts"]["errors"] == 1
    assert payload["findings"][0]["rule"] == "FS004"
    assert payload["analyzers"] == ["feature-schema"]


def test_report_rejects_unknown_format():
    with pytest.raises(CheckError):
        run_checks(rules=["LK"]).render("yaml")
