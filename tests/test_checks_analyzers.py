"""Feature-schema, lint, baseline, and driver tests.

Seeded-violation sources prove each analyzer actually fires; the
repo-level runs prove the codebase itself is clean. (The concurrency,
plan-invariant, ensemble, CFG, and SARIF layers have their own test
modules.)
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checks import (
    Baseline,
    Finding,
    Severity,
    Suppression,
    check_feature_schema,
    check_lint,
    run_checks,
)
from repro.checks.findings import update_baseline, write_baseline
from repro.checks.lint import allowed_exception_names, lint_source
from repro.errors import CheckError

# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------

_LINT_VIOLATIONS = '''
import numpy as np

def awful(items=[]):
    print(items)
    try:
        raise ValueError("untyped")
    except:
        pass
    rng = np.random.default_rng()
    return np.random.rand(3), rng
'''


def test_lint_flags_every_seeded_rule():
    findings = lint_source(_LINT_VIOLATIONS, "somewhere.py",
                           allowed_exception_names())
    rules = {f.rule for f in findings}
    assert rules == {"PL001", "PL002", "PL003", "PL004", "PL005"}
    assert sum(1 for f in findings if f.rule == "PL005") == 2


def test_lint_allows_local_reproerror_subclasses():
    source = (
        "from ..errors import PlanError\n"
        "class LocalError(PlanError):\n"
        "    pass\n"
        "class DeeperError(LocalError):\n"
        "    pass\n"
        "def f():\n"
        "    raise DeeperError('typed enough')\n")
    findings = lint_source(source, "somewhere.py", allowed_exception_names())
    assert findings == []


def test_lint_exempts_process_edges():
    source = "def f():\n    raise SystemExit(2)\n"
    assert lint_source(source, "cli.py", allowed_exception_names()) == []
    flagged = lint_source(source, "core/model.py", allowed_exception_names())
    assert {f.rule for f in flagged} == {"PL001"}


def test_repo_passes_its_own_lint():
    assert check_lint() == []


# ---------------------------------------------------------------------------
# feature schema
# ---------------------------------------------------------------------------

def test_repo_feature_schema_is_clean():
    assert check_feature_schema() == []


def test_model_file_drift_detected(tmp_path):
    stale = tmp_path / "stale_model.json"
    stale.write_text(json.dumps({
        "model": {"n_features": 3},
        "feature_names": ["bogus_a", "bogus_b"],
    }))
    findings = check_feature_schema(model_path=str(stale))
    rules = {f.rule for f in findings}
    assert "FS004" in rules  # wrong n_features
    assert "FS003" in rules  # diverging names


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def _finding(rule="LK002", path="src/repro/serving/x.py", line=10):
    return Finding(rule, Severity.ERROR, path, line, "message")


def test_baseline_splits_suppressed_findings():
    baseline = Baseline([Suppression(rule="LK002",
                                     path="src/repro/serving/x.py")])
    new, suppressed = baseline.split([_finding(), _finding(rule="PL001")])
    assert [f.rule for f in new] == ["PL001"]
    assert [f.rule for f in suppressed] == ["LK002"]


def test_baseline_wildcard_and_line_matching():
    anywhere = Baseline([Suppression(rule="*", path=None, line=None)])
    assert anywhere.is_suppressed(_finding())
    pinned = Baseline([Suppression(rule="LK002", line=11)])
    assert not pinned.is_suppressed(_finding(line=10))
    assert pinned.is_suppressed(_finding(line=11))


def test_baseline_toml_round_trip(tmp_path):
    path = tmp_path / "baseline.toml"
    write_baseline([_finding(), _finding(rule="PL004", line=3)], path)
    loaded = Baseline.load(path)
    assert loaded.is_suppressed(_finding())
    assert loaded.is_suppressed(_finding(rule="PL004", line=3))
    assert not loaded.is_suppressed(_finding(rule="CG005"))


def test_baseline_load_missing_file_is_typed_error(tmp_path):
    with pytest.raises(CheckError):
        Baseline.load(tmp_path / "absent.toml")


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def test_run_checks_repo_is_clean():
    # The repo baseline grandfathers exactly two findings: the remaining
    # ROADMAP perf debt (HP003 per-task fan-out; HP001 was retired by
    # the batch-native codegen work) and the lifecycle log's intentional
    # mid-frame fault site (HP004 — the site must fire inside the append
    # critical section or torn-tail recovery is untestable).
    baseline = Path(__file__).resolve().parents[1] / "checks_baseline.toml"
    report = run_checks(baseline=baseline)
    assert report.findings == []
    assert report.exit_code == 0
    assert sorted(f.rule for f in report.suppressed) == ["HP003", "HP004"]
    assert set(report.analyzers_run) == {
        "codegen", "feature-schema", "plan-invariants", "ensemble",
        "concurrency", "lint", "responsiveness", "determinism",
        "exceptions", "resources", "hotpath"}
    # CI's perf gate allows 10s for the whole suite including the
    # interprocedural pass; leave headroom for slow runners here.
    assert report.elapsed_seconds < 10.0
    assert set(report.timings) == set(report.analyzers_run)
    assert all(seconds >= 0.0 for seconds in report.timings.values())


def test_run_checks_rule_filter_limits_analyzers():
    report = run_checks(rules=["LK"])
    assert report.analyzers_run == ["concurrency"]
    report = run_checks(rules=["CG005", "PL001"])
    assert set(report.analyzers_run) == {"codegen", "lint"}


def test_run_checks_unknown_rule_is_typed_error():
    with pytest.raises(CheckError):
        run_checks(rules=["ZZ999"])


def test_run_checks_nonzero_exit_on_seeded_drift(tmp_path):
    stale = tmp_path / "stale_model.json"
    stale.write_text(json.dumps({"model": {"n_features": 3}}))
    report = run_checks(rules=["FS"], model_path=str(stale))
    assert report.exit_code == 1
    assert {f.rule for f in report.findings} == {"FS004"}


def test_run_checks_baseline_restores_zero_exit(tmp_path):
    stale = tmp_path / "stale_model.json"
    stale.write_text(json.dumps({"model": {"n_features": 3}}))
    baseline = Baseline([Suppression(rule="FS004")])
    report = run_checks(rules=["FS"], model_path=str(stale),
                        baseline=baseline)
    assert report.exit_code == 0
    assert [f.rule for f in report.suppressed] == ["FS004"]


def test_report_json_rendering(tmp_path):
    stale = tmp_path / "stale_model.json"
    stale.write_text(json.dumps({"model": {"n_features": 3}}))
    report = run_checks(rules=["FS"], model_path=str(stale))
    payload = json.loads(report.render("json"))
    assert payload["counts"]["errors"] == 1
    assert payload["findings"][0]["rule"] == "FS004"
    assert payload["analyzers"] == ["feature-schema"]
    assert set(payload["analyzer_seconds"]) == {"feature-schema"}
    assert payload["exit_code"] == 1


def test_report_rejects_unknown_format():
    with pytest.raises(CheckError):
        run_checks(rules=["LK"]).render("yaml")


def _small_model_doc(tmp_path):
    """A valid 1-tree model that splits on f0 but never on f1."""
    from repro.trees.boosting import BoostedTreesModel
    from repro.trees.serialize import dumps_model
    from repro.trees.tree import Tree, TreeNode

    tree = Tree.from_nodes([
        TreeNode(feature=0, threshold=1.0, left=1, right=2),
        TreeNode(value=0.1),
        TreeNode(value=0.2),
    ])
    path = tmp_path / "small_model.json"
    path.write_text(dumps_model(BoostedTreesModel([tree], 0.0, 2)))
    return str(path)


def test_unused_feature_check_is_opt_in(tmp_path):
    # A small-but-legitimate model leaves schema features unsplit; the
    # default --model run must not flood EA006 warnings (verify caught
    # 116 of them on a 16-query demo model before this gate existed).
    model = _small_model_doc(tmp_path)
    report = run_checks(rules=["EA"], model_path=model)
    assert report.findings == []
    report = run_checks(rules=["EA"], model_path=model,
                        check_unused_features=True)
    assert {f.rule for f in report.findings} == {"EA006"}
    assert report.exit_code == 1


def test_analyzer_crash_exits_3_not_1():
    # A missing model file makes the model-consuming analyzers raise;
    # the driver converts that into <prefix>000 findings and a distinct
    # exit code so CI can tell broken checker from broken code.
    report = run_checks(rules=["FS"],
                        model_path="/nonexistent/model.json")
    assert report.exit_code == 3
    assert [f.rule for f in report.findings] == ["FS000"]
    assert "model file not found" in report.findings[0].message


def test_analyzer_crash_findings_are_baselinable():
    baseline = Baseline([Suppression(rule="FS000")])
    report = run_checks(rules=["FS"],
                        model_path="/nonexistent/model.json",
                        baseline=baseline)
    assert report.exit_code == 0


# ---------------------------------------------------------------------------
# update_baseline (merge semantics)
# ---------------------------------------------------------------------------

def test_update_baseline_fresh_file_adds_reason_stubs(tmp_path):
    path = tmp_path / "baseline.toml"
    kept, added, dropped = update_baseline(
        [_finding(), _finding(rule="PL004", line=3)], path)
    assert (kept, added, dropped) == (0, 2, 0)
    text = path.read_text()
    assert text.count("[[suppress]]") == 2
    assert text.count("# reason: TODO") == 2
    loaded = Baseline.load(path)
    assert loaded.is_suppressed(_finding())
    assert loaded.is_suppressed(_finding(rule="PL004", line=3))


def test_update_baseline_keeps_matching_entries_with_reasons(tmp_path):
    path = tmp_path / "baseline.toml"
    path.write_text(
        "[[suppress]]\n"
        'rule = "LK002"\n'
        'path = "src/repro/serving/x.py"\n'
        'reason = "grandfathered until the registry rework"\n')
    kept, added, dropped = update_baseline(
        [_finding(), _finding(rule="PL004", line=3)], path)
    assert (kept, added, dropped) == (1, 1, 0)
    text = path.read_text()
    assert "grandfathered until the registry rework" in text
    assert text.count("# reason: TODO") == 1


def test_update_baseline_drops_stale_entries(tmp_path):
    path = tmp_path / "baseline.toml"
    path.write_text(
        "[[suppress]]\n"
        'rule = "CG009"\n'
        'reason = "fixed long ago"\n')
    kept, added, dropped = update_baseline([_finding()], path)
    assert (kept, added, dropped) == (0, 1, 1)
    assert "CG009" not in path.read_text()


def test_update_baseline_dedupes_identical_findings(tmp_path):
    path = tmp_path / "baseline.toml"
    kept, added, dropped = update_baseline([_finding(), _finding()], path)
    assert (kept, added, dropped) == (0, 1, 0)
