"""Tests for the fixed benchmark suites (TPC-H, TPC-DS, JOB)."""

import pytest

from repro.engine.logical import LogicalGroupBy, LogicalNode, count_joins
from repro.engine.optimizer import Optimizer
from repro.engine.pipelines import decompose_into_pipelines
from repro.datagen.instances import get_instance
from repro.datagen.benchmarks_job import job_family_blocks, job_queries
from repro.datagen.benchmarks_tpcds import tpcds_queries
from repro.datagen.benchmarks_tpch import tpch_queries


@pytest.fixture(scope="module")
def tpch():
    return get_instance("tpch_sf1")


@pytest.fixture(scope="module")
def tpcds():
    return get_instance("tpcds_sf1")


@pytest.fixture(scope="module")
def imdb():
    return get_instance("imdb")


class TestTPCH:
    def test_22_queries(self, tpch):
        queries = tpch_queries(tpch)
        assert len(queries) == 22
        assert [name for name, _ in queries][:3] == [
            "tpch_q1", "tpch_q2", "tpch_q3"]

    def test_all_queries_optimize_and_decompose(self, tpch):
        optimizer = Optimizer(tpch.schema, tpch.catalog)
        for name, logical in tpch_queries(tpch):
            plan = optimizer.optimize(logical, name)
            pipelines = decompose_into_pipelines(plan)
            assert pipelines, name

    def test_q5_small_table_elimination(self, tpch):
        """The paper's running example: nation/region joins disappear."""
        from repro.datagen.benchmarks_tpch import tpch_query
        optimizer = Optimizer(tpch.schema, tpch.catalog)
        plan = optimizer.optimize(tpch_query("tpch_q5", tpch))
        assert "nation" not in plan.base_tables()
        assert "region" not in plan.base_tables()

    def test_q6_is_single_table(self, tpch):
        from repro.datagen.benchmarks_tpch import tpch_query
        logical = tpch_query("tpch_q6", tpch)
        assert set(logical.tables()) == {"lineitem"}
        assert count_joins(logical) == 0

    def test_join_counts_plausible(self, tpch):
        counts = {name: count_joins(logical)
                  for name, logical in tpch_queries(tpch)}
        assert counts["tpch_q8"] >= 6  # the deepest join chain
        assert max(counts.values()) <= 8

    def test_works_on_other_scale_factors(self):
        big = get_instance("tpch_sf100")
        queries = tpch_queries(big)
        assert len(queries) == 22


class TestTPCDS:
    def test_100_queries(self, tpcds):
        assert len(tpcds_queries(tpcds)) == 100

    def test_all_optimize(self, tpcds):
        optimizer = Optimizer(tpcds.schema, tpcds.catalog)
        for name, logical in tpcds_queries(tpcds):
            plan = optimizer.optimize(logical, name)
            assert decompose_into_pipelines(plan)

    def test_deterministic(self, tpcds):
        a = tpcds_queries(tpcds)
        b = tpcds_queries(tpcds)
        for (name_a, plan_a), (name_b, plan_b) in zip(a, b):
            assert name_a == name_b
            assert plan_a.tables() == plan_b.tables()

    def test_structural_diversity(self, tpcds):
        signatures = {tuple(sorted(set(logical.tables())))
                      for _, logical in tpcds_queries(tpcds)}
        assert len(signatures) >= 10


class TestJOB:
    def test_113_queries_33_families(self, imdb):
        queries = job_queries(imdb)
        assert len(queries) == 113
        families = {name.rstrip("abcd") for name, _ in queries}
        assert len(families) == 33

    def test_all_aggregate_to_single_row(self, imdb):
        for name, logical in job_queries(imdb):
            assert isinstance(logical, LogicalGroupBy)
            assert logical.group_columns == []

    def test_join_counts_match_job_range(self, imdb):
        counts = [count_joins(logical) for _, logical in job_queries(imdb)]
        assert min(counts) >= 1
        assert max(counts) >= 5

    def test_all_optimize(self, imdb):
        optimizer = Optimizer(imdb.schema, imdb.catalog)
        for name, logical in job_queries(imdb):
            plan = optimizer.optimize(logical, name)
            assert decompose_into_pipelines(plan)

    def test_family_blocks_connected(self, imdb):
        """Every family's table set must form a connected join graph."""
        assert len(job_family_blocks()) == 33
