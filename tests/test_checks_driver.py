"""Driver behaviour: crash containment, --only/--jobs, baseline lifecycle.

A crashing analyzer must cost exit code 3 and a ``<prefix>000`` finding
— never the findings (or the SARIF artifact) of the analyzers that
succeeded. The baseline tests walk the full suppression lifecycle:
``--update-baseline`` → clean re-run → hand-edited drift → the finding
surfaces as unsuppressed and the dead entry is reported stale.
"""

from __future__ import annotations

import json

import pytest

from repro.checks import driver as driver_mod
from repro.checks.driver import (
    EXIT_ANALYZER_CRASH,
    EXIT_FINDINGS,
    run_checks,
)
from repro.checks.findings import (
    Baseline,
    Finding,
    Severity,
    Suppression,
    update_baseline,
)
from repro.checks.hotpath import check_hotpath, load_hot_root_config
from repro.errors import CheckError


@pytest.fixture(autouse=True)
def _quiet_hotpath(monkeypatch):
    # The repo deliberately carries two baselined HP findings (the
    # ROADMAP perf debts); these driver tests assert exact finding
    # sets, so they run against a hotpath analyzer that reports
    # nothing. The HP-specific driver tests below swap the real
    # runner back in.
    monkeypatch.setitem(driver_mod.ANALYZERS, "hotpath",
                        ("HP", lambda opts: []))


def _boom(opts):
    raise RuntimeError("synthetic analyzer bug")


def _planted(opts):
    return [Finding("CG010", Severity.ERROR, "src/repro/fake.py", 5,
                    "planted finding for baseline tests")]


# ---------------------------------------------------------------------------
# crash containment (exit code 3, SARIF survives)
# ---------------------------------------------------------------------------


def test_analyzer_crash_reports_000_and_exit_3(monkeypatch):
    monkeypatch.setitem(driver_mod.ANALYZERS, "codegen", ("CG", _boom))
    report = run_checks()
    assert report.exit_code == EXIT_ANALYZER_CRASH
    crashes = [f for f in report.findings if f.rule == "CG000"]
    assert len(crashes) == 1
    assert "RuntimeError" in crashes[0].message
    assert "synthetic analyzer bug" in crashes[0].message
    # every other analyzer still ran to completion
    assert set(report.analyzers_run) == set(driver_mod.ANALYZERS)
    assert [f for f in report.findings if f.rule != "CG000"] == []


def test_crash_still_emits_sarif_for_succeeded_analyzers(monkeypatch):
    monkeypatch.setitem(driver_mod.ANALYZERS, "codegen", ("CG", _boom))
    monkeypatch.setitem(driver_mod.ANALYZERS, "lint", ("PL", _planted))
    report = run_checks()
    doc = json.loads(report.render("sarif"))
    rules = {r["ruleId"] for r in doc["runs"][0]["results"]}
    assert rules == {"CG000", "CG010"}   # crash and survivor, side by side
    assert report.exit_code == EXIT_ANALYZER_CRASH


def test_crash_finding_survives_rule_filter(monkeypatch):
    # `--rule CG005` selects codegen but not CG000; the crash finding
    # must survive the rule filter or the run would lie with exit 0.
    monkeypatch.setitem(driver_mod.ANALYZERS, "codegen", ("CG", _boom))
    report = run_checks(rules=["CG005"])
    assert report.exit_code == EXIT_ANALYZER_CRASH
    assert [f.rule for f in report.findings] == ["CG000"]


def test_check_error_is_still_a_000_finding(monkeypatch):
    def raise_check_error(opts):
        raise CheckError("cannot load corpus")
    monkeypatch.setitem(driver_mod.ANALYZERS, "lint",
                        ("PL", raise_check_error))
    report = run_checks()
    assert report.exit_code == EXIT_ANALYZER_CRASH
    assert [f.rule for f in report.findings] == ["PL000"]
    assert "cannot load corpus" in report.findings[0].message


# ---------------------------------------------------------------------------
# --only and --jobs
# ---------------------------------------------------------------------------


def test_only_selects_by_name_and_prefix():
    by_name = run_checks(only=["determinism"])
    assert by_name.analyzers_run == ["determinism"]
    by_prefix = run_checks(only=["DT", "resources"])
    assert by_prefix.analyzers_run == ["determinism", "resources"]


def test_only_unknown_analyzer_raises():
    with pytest.raises(CheckError, match="unknown analyzer"):
        run_checks(only=["nosuch"])


def test_only_composes_with_rule_filter():
    report = run_checks(only=["lint", "concurrency"], rules=["LK"])
    assert report.analyzers_run == ["concurrency"]


def test_jobs_parallel_run_matches_serial(monkeypatch):
    monkeypatch.setitem(driver_mod.ANALYZERS, "lint", ("PL", _planted))
    serial = run_checks()
    parallel = run_checks(jobs=4)
    assert parallel.analyzers_run == serial.analyzers_run
    assert parallel.findings == serial.findings
    assert set(parallel.timings) == set(serial.timings)


def test_jobs_must_be_positive():
    with pytest.raises(CheckError, match="jobs"):
        run_checks(jobs=0)


# ---------------------------------------------------------------------------
# baseline suppression roundtrip (SARIF included)
# ---------------------------------------------------------------------------


def test_baseline_roundtrip_and_drift(monkeypatch, tmp_path):
    monkeypatch.setitem(driver_mod.ANALYZERS, "lint", ("PL", _planted))
    baseline_path = tmp_path / "baseline.toml"

    # Finding is new without a baseline; --update-baseline grandfathers
    # it with a `# reason:` stub to fill in.
    first = run_checks()
    assert first.exit_code == EXIT_FINDINGS
    kept, added, dropped = update_baseline(first.findings, baseline_path)
    assert (kept, added, dropped) == (0, 1, 0)
    assert "# reason:" in baseline_path.read_text()

    # Re-run against the fresh baseline: zero new findings, suppression
    # carried into SARIF as an external suppression.
    second = run_checks(baseline=baseline_path)
    assert second.exit_code == 0
    assert second.findings == []
    assert len(second.suppressed) == 1
    assert second.stale_suppressions == []
    doc = json.loads(second.render("sarif"))
    results = doc["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["suppressions"][0]["kind"] == "external"

    # Hand-edit the stub entry so it no longer matches (source drift):
    # the finding surfaces as unsuppressed and the entry is dead weight.
    baseline_path.write_text(
        baseline_path.read_text().replace("line = 5", "line = 6"))
    third = run_checks(baseline=baseline_path)
    assert third.exit_code == EXIT_FINDINGS
    assert [f.rule for f in third.findings] == ["CG010"]
    assert [s.line for s in third.stale_suppressions] == [6]
    assert "stale baseline suppression" in third.render("text")

    # --update-baseline prunes the dead entry and re-adds the real one.
    kept, added, dropped = update_baseline(third.findings, baseline_path)
    assert (kept, added, dropped) == (0, 1, 1)
    assert run_checks(baseline=baseline_path).exit_code == 0


def test_hand_written_reason_survives_update(monkeypatch, tmp_path):
    monkeypatch.setitem(driver_mod.ANALYZERS, "lint", ("PL", _planted))
    baseline_path = tmp_path / "baseline.toml"
    update_baseline(run_checks().findings, baseline_path)
    baseline_path.write_text(baseline_path.read_text().replace(
        "# reason: TODO — justify why this finding is grandfathered",
        'reason = "grandfathered until the fake module is rewritten"'))
    kept, added, dropped = update_baseline(
        run_checks().findings, baseline_path)
    assert (kept, added, dropped) == (1, 0, 0)
    assert ('reason = "grandfathered until the fake module is rewritten"'
            in baseline_path.read_text())


# ---------------------------------------------------------------------------
# stale-suppression reporting
# ---------------------------------------------------------------------------


def test_stale_suppression_warned_on_full_run():
    loaded = Baseline(suppressions=[
        Suppression(rule="PL004", path="src/repro/nonexistent.py", line=1)])
    report = run_checks(baseline=loaded)
    assert len(report.stale_suppressions) == 1
    warning = report.stale_warnings()[0]
    assert "PL004" in warning
    assert "src/repro/nonexistent.py:1" in warning
    payload = json.loads(report.render("json"))
    assert payload["stale_suppressions"] == [
        {"rule": "PL004", "path": "src/repro/nonexistent.py",
         "line": 1, "reason": ""}]


def test_stale_detection_suppressed_on_filtered_runs():
    # A --only/--rule run never saw most findings, so a non-matching
    # entry proves nothing — no stale warnings.
    loaded = Baseline(suppressions=[
        Suppression(rule="PL004", path="src/repro/nonexistent.py", line=1)])
    assert run_checks(baseline=loaded,
                      only=["lint"]).stale_suppressions == []
    assert run_checks(baseline=loaded,
                      rules=["PL"]).stale_suppressions == []


# ---------------------------------------------------------------------------
# hotpath driver hygiene (--only hp, --jobs determinism, stale pruning)
# ---------------------------------------------------------------------------

#: The grandfathered findings a baseline-less hotpath run reports: the
#: lifecycle log's intentional mid-frame fault site, then the one
#: remaining ROADMAP perf debt (HP001 was retired when predict_one
#: moved onto the batch FFI path).
_HP_DEBTS = [("HP004", "src/repro/lifecycle/obslog.py"),
             ("HP003", "src/repro/parallel/executor.py")]


def _real_hotpath(monkeypatch):
    """Swap the real analyzer back in over the autouse stub."""
    monkeypatch.setitem(driver_mod.ANALYZERS, "hotpath",
                        ("HP", lambda opts: check_hotpath()))


@pytest.mark.parametrize("token", ["hp", "HP", "hotpath"])
def test_only_selects_hotpath_by_name_and_prefix(monkeypatch, token):
    _real_hotpath(monkeypatch)
    report = run_checks(only=[token])
    assert report.analyzers_run == ["hotpath"]
    assert [(f.rule, f.path) for f in report.findings] == _HP_DEBTS
    assert report.exit_code == EXIT_FINDINGS   # no baseline passed


def test_hp_findings_deterministic_under_jobs(monkeypatch):
    _real_hotpath(monkeypatch)
    serial = run_checks(only=["hotpath", "determinism", "resources"])
    parallel = run_checks(only=["hotpath", "determinism", "resources"],
                          jobs=4)
    assert parallel.analyzers_run == serial.analyzers_run
    assert parallel.findings == serial.findings
    assert [(f.rule, f.path) for f in serial.findings] == _HP_DEBTS


def test_stale_hp_suppression_pruned_on_update(monkeypatch, tmp_path):
    _real_hotpath(monkeypatch)
    baseline_path = tmp_path / "baseline.toml"
    baseline_path.write_text(
        '[[suppress]]\nrule = "HP005"\n'
        'path = "src/repro/gone.py"\nline = 1\n'
        'reason = "fixed long ago"\n')
    report = run_checks(only=["hotpath"])
    kept, added, dropped = update_baseline(report.findings, baseline_path)
    assert (kept, added, dropped) == (0, len(_HP_DEBTS), 1)
    assert "HP005" not in baseline_path.read_text()
    assert run_checks(only=["hotpath"],
                      baseline=baseline_path).exit_code == 0


def test_hotpath_section_survives_baseline_update(monkeypatch, tmp_path):
    # --update-baseline rewrites the suppression tables; the [hotpath]
    # root declarations share the file and must come through verbatim.
    monkeypatch.setitem(driver_mod.ANALYZERS, "lint", ("PL", _planted))
    baseline_path = tmp_path / "baseline.toml"
    baseline_path.write_text(
        '[[suppress]]\nrule = "CG777"\nreason = "dead entry"\n'
        '\n'
        '[hotpath]\n'
        'roots = ["Service.handle"]\n'
        'per_element_roots = ["Model.predict_one"]\n')
    kept, added, dropped = update_baseline(
        run_checks().findings, baseline_path)
    assert (kept, added, dropped) == (0, 1, 1)
    text = baseline_path.read_text()
    assert 'roots = ["Service.handle"]' in text
    assert load_hot_root_config(baseline_path) == (
        ["Service.handle"], ["Model.predict_one"])
