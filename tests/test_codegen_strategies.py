"""Tests for the pluggable codegen strategy layer (codegen v2).

Covers the strategy registry, the flat node-array emitters, cross-
backend equivalence (bit-identical for float64 strategies, documented
float32 tolerance for ``flat_array_f32``), the extended CG verifier's
mutation oracle on the flat emitter, the single-FFI-per-batch serving
contract that retired HP001, the empty-batch/1-D edge cases on every
backend, ``compiler_info`` memoization, and save/load round-tripping
of the persisted strategy choice.
"""

import json
import re
import threading

import numpy as np
import pytest

import repro.treecomp.compiler as compiler_mod
from repro.checks.codegen_verify import (
    parse_flat_source,
    self_check_model,
    verify_codegen,
)
from repro.core.model import PredictionBackend, T3Config, T3Model
from repro.errors import CompilationError
from repro.serving.batching import MicroBatcher
from repro.serving.registry import ModelRegistry
from repro.treecomp import (
    DEFAULT_STRATEGY,
    STRATEGIES,
    CompiledTreeModel,
    InterpretedModel,
    MultiThreadedInterpretedModel,
    PythonScalarModel,
    compile_model,
    compiler_info,
    find_c_compiler,
    flatten_ensemble,
    generate_c_source,
    get_strategy,
)
from repro.trees import BoostingParams, train_boosted_trees
from repro.trees.boosting import BoostedTreesModel
from repro.trees.tree import Tree, TreeNode

HAVE_CC = find_c_compiler() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler available")

#: Documented float32-threshold tolerance: truncating a threshold moves
#: it by at most half an ulp, which can only re-route inputs lying
#: between the exact and truncated threshold — bounded here relative to
#: the prediction scale of the test models.
F32_RTOL = 1e-5


@pytest.fixture(scope="module")
def trained_model() -> BoostedTreesModel:
    rng = np.random.default_rng(7)
    X = rng.uniform(0, 10, size=(1500, 6))
    y = np.sin(X[:, 0]) + np.where(X[:, 1] > 5, 2.0, 0.0) + 0.1 * X[:, 2]
    return train_boosted_trees(X, y, BoostingParams(n_rounds=30))


@pytest.fixture(scope="module")
def probe_matrix() -> np.ndarray:
    return np.random.default_rng(8).uniform(-5, 15, size=(400, 6))


# ---------------------------------------------------------------------------
# strategy registry
# ---------------------------------------------------------------------------


class TestStrategyRegistry:
    def test_registry_contents(self):
        assert sorted(STRATEGIES) == ["flat_array", "flat_array_f32",
                                      "nested_if"]
        assert DEFAULT_STRATEGY == "nested_if"
        for name, strategy in STRATEGIES.items():
            assert strategy.name == name

    def test_get_strategy_by_name_and_instance(self):
        flat = get_strategy("flat_array")
        assert get_strategy(flat) is flat
        assert not flat.emits_single_entry
        assert get_strategy("nested_if").emits_single_entry

    def test_unknown_strategy_rejected(self):
        with pytest.raises(CompilationError, match="unknown codegen"):
            get_strategy("llvm_jit")

    def test_threshold_dtypes(self):
        assert STRATEGIES["nested_if"].threshold_dtype == "float64"
        assert STRATEGIES["flat_array"].threshold_dtype == "float64"
        assert STRATEGIES["flat_array_f32"].threshold_dtype == "float32"


# ---------------------------------------------------------------------------
# flat emitter: source shape and flattening
# ---------------------------------------------------------------------------


class TestFlatEmitter:
    def test_flat_source_structure(self, trained_model):
        source = generate_c_source(trained_model, "m", strategy="flat_array")
        for array in ("m_node_feature", "m_node_threshold", "m_node_left",
                      "m_node_right", "m_node_value", "m_tree_root"):
            assert f"static const" in source and array in source
        assert "void m_predict_batch(const double *f" in source
        assert "long m_n_features(void)" in source
        # Batch-native contract: no single-row entry point is exported.
        assert "double m_predict(const double *f)" not in source

    def test_f32_source_uses_float_thresholds(self, trained_model):
        source = generate_c_source(trained_model, strategy="flat_array_f32")
        assert re.search(r"static const float t3_node_threshold\[", source)
        # leaf values stay double for bit-exact accumulation
        assert re.search(r"static const double t3_node_value\[", source)

    def test_flatten_ensemble_roundtrip(self, trained_model):
        feature, threshold, left, right, value, roots = \
            flatten_ensemble(trained_model)
        total = sum(t.n_nodes for t in trained_model.trees)
        assert len(feature) == len(threshold) == len(left) == len(right) \
            == len(value) == total
        assert list(roots) == list(np.cumsum(
            [0] + [t.n_nodes for t in trained_model.trees[:-1]]))
        # replay one row through the arrays and through the model
        x = np.full(trained_model.n_features, 3.0)
        total_pred = trained_model.base_score
        for root in roots:
            node = int(root)
            while feature[node] >= 0:
                node = int(left[node] if x[feature[node]] <= threshold[node]
                           else right[node])
            total_pred += value[node]
        assert total_pred == trained_model.predict_one(x)

    def test_f32_near_tie_guard_refuses(self):
        # Two same-feature thresholds within one float32 ulp: EA005
        # fires, so the f32 strategy must refuse to emit.
        ulp = float(np.spacing(np.float32(1.0)))
        trees = [
            Tree.from_nodes([
                TreeNode(feature=0, threshold=1.0, left=1, right=2),
                TreeNode(value=1.0), TreeNode(value=2.0)]),
            Tree.from_nodes([
                TreeNode(feature=0, threshold=1.0 + 0.25 * ulp,
                         left=1, right=2),
                TreeNode(value=3.0), TreeNode(value=4.0)]),
        ]
        model = BoostedTreesModel(trees, 0.0, 2)
        with pytest.raises(CompilationError, match="float32"):
            generate_c_source(model, strategy="flat_array_f32")
        # the float64 flat strategy accepts the same model
        assert generate_c_source(model, strategy="flat_array")

    def test_f32_overflowing_threshold_refused(self):
        tree = Tree.from_nodes([
            TreeNode(feature=0, threshold=1e39, left=1, right=2),
            TreeNode(value=1.0), TreeNode(value=2.0)])
        model = BoostedTreesModel([tree], 0.0, 1)
        with pytest.raises(CompilationError, match="overflows float32"):
            generate_c_source(model, strategy="flat_array_f32")

    def test_invalid_prefix_and_empty_model_rejected(self, trained_model):
        with pytest.raises(CompilationError):
            generate_c_source(trained_model, "1bad", strategy="flat_array")
        with pytest.raises(CompilationError):
            generate_c_source(BoostedTreesModel([], 0.0, 4),
                              strategy="flat_array")


# ---------------------------------------------------------------------------
# cross-backend equivalence
# ---------------------------------------------------------------------------


@needs_cc
class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def reference(self, trained_model, probe_matrix):
        return InterpretedModel(trained_model).predict(probe_matrix)

    @pytest.mark.parametrize("strategy", ["nested_if", "flat_array"])
    def test_float64_strategies_bit_identical(self, trained_model,
                                              probe_matrix, reference,
                                              strategy):
        compiled = compile_model(trained_model, strategy=strategy)
        try:
            got = compiled.predict(probe_matrix)
            # same double arithmetic in the same order: bit-identical
            assert np.array_equal(got, reference)
            singles = np.array([compiled.predict_one(x)
                                for x in probe_matrix[:32]])
            assert np.array_equal(singles, reference[:32])
        finally:
            compiled.close()

    def test_f32_strategy_within_documented_tolerance(self, trained_model,
                                                      probe_matrix,
                                                      reference):
        compiled = compile_model(trained_model, strategy="flat_array_f32")
        try:
            got = compiled.predict(probe_matrix)
            assert np.allclose(got, reference, rtol=F32_RTOL, atol=1e-9)
        finally:
            compiled.close()

    def test_interpreted_backends_agree(self, trained_model, probe_matrix,
                                        reference):
        assert np.array_equal(
            PythonScalarModel(trained_model).predict(probe_matrix),
            reference)
        mt = MultiThreadedInterpretedModel(trained_model)
        try:
            assert np.array_equal(mt.predict(probe_matrix), reference)
        finally:
            mt.close()

    def test_predict_one_thread_safe(self, trained_model, probe_matrix):
        # per-thread 1-row buffers: concurrent predict_one calls must
        # not race on shared output storage
        compiled = compile_model(trained_model, strategy="flat_array")
        expected = trained_model.predict(probe_matrix)
        errors = []

        def worker(offset):
            try:
                for i in range(offset, len(probe_matrix), 4):
                    got = compiled.predict_one(probe_matrix[i])
                    if got != expected[i]:
                        errors.append((i, got, expected[i]))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        compiled.close()
        assert errors == []


# ---------------------------------------------------------------------------
# verifier: every strategy proves clean, mutations are caught
# ---------------------------------------------------------------------------


class TestFlatVerifier:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_clean_generation_verifies(self, trained_model, strategy):
        assert verify_codegen(trained_model, strategy=strategy) == []

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_self_check_model_verifies(self, strategy):
        assert verify_codegen(self_check_model(), strategy=strategy) == []

    def _flat_source(self, model):
        return generate_c_source(model, strategy="flat_array")

    def test_mutation_flipped_threshold(self):
        # the mutation oracle required by the issue: a perturbed
        # threshold in the flat arrays must surface as CG005
        model = self_check_model()
        source = self._flat_source(model)
        parsed = parse_flat_source(source)
        victim = next(repr(t) for f, t in zip(parsed.feature,
                                              parsed.threshold) if f >= 0)
        mutated = source.replace(victim, repr(float(victim) + 0.5), 1)
        assert mutated != source
        rules = {f.rule for f in verify_codegen(model, source=mutated,
                                                strategy="flat_array")}
        assert "CG005" in rules

    def test_mutation_swapped_child_index(self):
        # a swapped left/right pair re-routes every split decision; the
        # lockstep walk must flag the topology mismatch as CG003
        model = self_check_model()
        source = self._flat_source(model)
        parsed = parse_flat_source(source)
        root = parsed.roots[0]
        left, right = parsed.left[root], parsed.right[root]
        lines = source.splitlines()
        swapped = []
        state = None
        for line in lines:
            if line.startswith("static const int t3_node_left["):
                state = ("swap", str(left), str(right))
            elif line.startswith("static const int t3_node_right["):
                state = ("swap", str(right), str(left))
            elif state and not line.startswith(" ") and line != "":
                state = None
            if state and line.startswith("    "):
                line = line.replace(f"    {state[1]},", f"    {state[2]},", 1)
                state = None
            swapped.append(line)
        mutated = "\n".join(swapped)
        assert mutated != source
        rules = {f.rule for f in verify_codegen(model, source=mutated,
                                                strategy="flat_array")}
        assert "CG003" in rules

    def test_mutation_wrong_tree_loop_bound(self):
        model = self_check_model()
        source = self._flat_source(model)
        mutated = source.replace("for (long t = 0; t < 5L; t++)",
                                 "for (long t = 0; t < 4L; t++)")
        rules = {f.rule for f in verify_codegen(model, source=mutated,
                                                strategy="flat_array")}
        assert "CG002" in rules

    def test_mutation_wrong_stride(self):
        model = self_check_model()
        source = self._flat_source(model)
        mutated = source.replace("row = f + i * 7L", "row = f + i * 6L")
        rules = {f.rule for f in verify_codegen(model, source=mutated,
                                                strategy="flat_array")}
        assert "CG008" in rules

    def test_unparseable_source_is_cg001(self):
        findings = verify_codegen(self_check_model(), source="int main(){}",
                                  strategy="flat_array")
        assert [f.rule for f in findings] == ["CG001"]

    def test_f64_thresholds_in_f32_unit_rejected(self):
        model = self_check_model()
        source = generate_c_source(model, strategy="flat_array")
        rules = {f.rule for f in verify_codegen(model, source=source,
                                                strategy="flat_array_f32")}
        assert "CG005" in rules

    def test_parse_flat_source_recovers_arrays(self, trained_model):
        source = self._flat_source(trained_model)
        parsed = parse_flat_source(source)
        assert parsed.n_nodes == sum(t.n_nodes for t in trained_model.trees)
        assert len(parsed.roots) == trained_model.n_trees
        assert parsed.batch_stride == trained_model.n_features
        assert parsed.reported_n_features == trained_model.n_features
        x = np.full(trained_model.n_features, 2.5)
        assert parsed.evaluate(x) == trained_model.predict_one(x)


# ---------------------------------------------------------------------------
# compiled-model edges: empty batches, 1-D input, FFI accounting
# ---------------------------------------------------------------------------


@needs_cc
class TestCompiledEdges:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_empty_batch_every_strategy(self, trained_model, strategy):
        compiled = compile_model(trained_model, strategy=strategy)
        try:
            out = compiled.predict(np.empty((0, 6)))
            assert out.shape == (0,) and out.dtype == np.float64
            assert compiled.ffi_calls == 0    # no null pointer crossed FFI
        finally:
            compiled.close()

    def test_empty_batch_interpreted_backends(self, trained_model):
        empty = np.empty((0, 6))
        for backend in (PythonScalarModel(trained_model),
                        InterpretedModel(trained_model)):
            out = backend.predict(empty)
            assert out.shape == (0,) and out.dtype == np.float64
        mt = MultiThreadedInterpretedModel(trained_model)
        try:
            assert mt.predict(empty).shape == (0,)
        finally:
            mt.close()

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_one_dimensional_input(self, trained_model, strategy):
        compiled = compile_model(trained_model, strategy=strategy)
        try:
            x = np.full(6, 1.5)
            out = compiled.predict(x)
            assert out.shape == (1,)
            assert out[0] == compiled.predict_one(x)
            with pytest.raises(CompilationError):
                compiled.predict(np.zeros(3))       # wrong-length vector
            with pytest.raises(CompilationError):
                compiled.predict(np.zeros((2, 3)))  # wrong column count
            with pytest.raises(CompilationError):
                compiled.predict(np.zeros((2, 2, 6)))  # wrong rank
        finally:
            compiled.close()

    def test_ffi_call_accounting(self, trained_model):
        compiled = compile_model(trained_model, strategy="flat_array")
        try:
            assert compiled.ffi_calls == 0
            compiled.predict(np.zeros((10, 6)))
            assert compiled.ffi_calls == 1       # one call for the batch
            compiled.predict_one(np.zeros(6))
            assert compiled.ffi_calls == 2       # one call for one row
        finally:
            compiled.close()

    def test_strategy_attribute(self, trained_model):
        for strategy in sorted(STRATEGIES):
            compiled = compile_model(trained_model, strategy=strategy)
            assert compiled.strategy == strategy
            compiled.close()


# ---------------------------------------------------------------------------
# compiler_info memoization
# ---------------------------------------------------------------------------


class TestCompilerInfoMemoized:
    def test_shells_out_exactly_once(self, monkeypatch):
        calls = []
        real_run = compiler_mod.subprocess.run

        def counting_run(*args, **kwargs):
            calls.append(args)
            return real_run(*args, **kwargs)

        monkeypatch.setattr(compiler_mod.subprocess, "run", counting_run)
        compiler_info.cache_clear()
        try:
            first = compiler_info()
            second = compiler_info()
            assert first == second
            assert len(calls) <= 1   # 0 when no compiler is installed
        finally:
            compiler_info.cache_clear()  # drop result built under the patch


# ---------------------------------------------------------------------------
# persistence and serving wiring
# ---------------------------------------------------------------------------


@needs_cc
class TestStrategyWiring:
    @pytest.fixture()
    def t3(self):
        booster = self_check_model()
        config = T3Config(compile_to_native=True,
                          codegen_strategy="flat_array")
        model = T3Model(booster, config)
        yield model
        model.close()

    def test_save_load_roundtrips_strategy(self, t3, tmp_path):
        path = tmp_path / "model.json"
        t3.save(path)
        assert json.loads(path.read_text())["codegen"] == "flat_array"
        loaded = T3Model.load(path)
        assert loaded.config.codegen_strategy == "flat_array"
        assert loaded._compiled is not None
        assert loaded._compiled.strategy == "flat_array"
        loaded.close()

    def test_load_codegen_override(self, t3, tmp_path):
        path = tmp_path / "model.json"
        t3.save(path)
        loaded = T3Model.load(path, codegen="nested_if")
        assert loaded.config.codegen_strategy == "nested_if"
        assert loaded._compiled.strategy == "nested_if"
        loaded.close()

    def test_legacy_payload_defaults_to_nested_if(self, t3, tmp_path):
        path = tmp_path / "model.json"
        t3.save(path)
        payload = json.loads(path.read_text())
        del payload["codegen"]    # pre-strategy-layer artifact
        path.write_text(json.dumps(payload))
        loaded = T3Model.load(path)
        assert loaded.config.codegen_strategy == "nested_if"
        loaded.close()

    def test_unknown_strategy_raises_not_silently_interprets(self):
        booster = self_check_model()
        config = T3Config(compile_to_native=True, codegen_strategy="typo")
        with pytest.raises(CompilationError, match="unknown codegen"):
            T3Model(booster, config)

    def test_registry_override_and_describe(self, t3, tmp_path):
        path = tmp_path / "model.json"
        t3.save(path)
        registry = ModelRegistry(codegen="nested_if")
        try:
            entry = registry.load(path)
            assert entry.describe()["codegen"] == "nested_if"
            assert entry.backend == "compiled"
        finally:
            registry.close()

    def test_exactly_one_ffi_call_per_microbatch(self, t3):
        # the HP001 retirement contract, asserted end to end: each
        # micro-batch the worker evaluates is exactly one native call
        assert t3.backend is PredictionBackend.COMPILED
        compiled = t3._compiled
        batcher = MicroBatcher(t3.predict_raw_batch, max_batch_rows=64,
                               max_wait_s=0.005)
        try:
            before = compiled.ffi_calls
            n_features = t3.booster.n_features
            rows = np.random.default_rng(3).normal(
                size=(24, n_features))
            results = []
            threads = [threading.Thread(
                target=lambda r=row: results.append(
                    batcher.submit(r.reshape(1, -1))))
                for row in rows]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = batcher.stats()
            assert stats.requests == 24
            assert stats.batches >= 1
            assert compiled.ffi_calls - before == stats.batches
            assert len(results) == 24
        finally:
            batcher.close()
