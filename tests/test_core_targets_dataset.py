"""Tests for target transformation and dataset assembly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrainingError
from repro.core.targets import (
    MAX_TUPLE_TIME,
    MIN_TUPLE_TIME,
    inverse_transform,
    transform_target,
    tuple_time_target,
)
from repro.core.ablation import TargetMode, training_matrices, transform_absolute
from repro.core.dataset import (
    CardinalityKind,
    build_dataset,
    cardinality_model_for,
    split_by_family,
)


class TestTargets:
    def test_roundtrip(self):
        times = np.array([1e-12, 1e-6, 1e-3, 1.0])
        assert np.allclose(inverse_transform(transform_target(times)), times)

    def test_clamping(self):
        assert transform_target(0.0) == transform_target(MIN_TUPLE_TIME)
        assert transform_target(1e9) == transform_target(MAX_TUPLE_TIME)

    def test_tuple_time(self):
        assert tuple_time_target(2.0, 1000) == pytest.approx(0.002)
        # Cardinality below one is floored to one.
        assert tuple_time_target(2.0, 0.0) == pytest.approx(2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(TrainingError):
            tuple_time_target(-1.0, 10)

    @given(st.floats(min_value=1e-15, max_value=10.0))
    def test_property_transform_monotone_decreasing(self, t):
        assert transform_target(t) >= transform_target(min(t * 2, 10.0)) - 1e-9

    @given(st.floats(min_value=1e-14, max_value=9.0))
    def test_property_roundtrip(self, t):
        assert inverse_transform(transform_target(t)) == pytest.approx(
            t, rel=1e-9)


class TestDataset:
    def test_shapes(self, toy_workload):
        dataset = build_dataset(toy_workload)
        total_pipelines = sum(q.n_pipelines for q in toy_workload)
        assert dataset.X.shape[0] == total_pipelines
        assert dataset.y.shape == (total_pipelines,)
        assert dataset.n_queries == len(toy_workload)

    def test_query_index_maps_back(self, toy_workload):
        dataset = build_dataset(toy_workload)
        for position, query in enumerate(dataset.queries):
            rows = dataset.rows_of_query(position)
            assert len(rows) == query.n_pipelines

    def test_pipeline_times_sum_to_query_times(self, toy_workload):
        dataset = build_dataset(toy_workload)
        totals = np.zeros(dataset.n_queries)
        np.add.at(totals, dataset.query_index, dataset.pipeline_times)
        # Medians per pipeline vs median of sums: close but not equal.
        assert np.allclose(totals, dataset.query_times(), rtol=0.2)

    def test_n_runs_restriction_changes_targets(self, toy_workload):
        full = build_dataset(toy_workload)
        single = build_dataset(toy_workload, n_runs=1)
        assert not np.allclose(full.pipeline_times, single.pipeline_times)

    def test_estimated_kind_changes_features(self, toy_workload):
        exact = build_dataset(toy_workload, kind=CardinalityKind.EXACT)
        estimated = build_dataset(toy_workload,
                                  kind=CardinalityKind.ESTIMATED)
        assert not np.allclose(exact.X, estimated.X)

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            build_dataset([])

    def test_cardinality_model_factory(self, toy_workload):
        query = toy_workload[0]
        # Toy instances are not in the corpus registry, so the factory
        # must be tested via corpus queries.
        from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
        from repro.datagen.instances import get_instance
        corpus_query = WorkloadBuilder(
            get_instance("financial"),
            WorkloadConfig(queries_per_structure=1,
                           include_fixed_benchmarks=False)).build()[0]
        exact = cardinality_model_for(corpus_query, CardinalityKind.EXACT)
        distorted = cardinality_model_for(corpus_query, CardinalityKind.EXACT,
                                          distortion=10.0)
        root = corpus_query.plan.root
        assert exact.output_cardinality(root) >= 0
        assert distorted.output_cardinality(root) >= 0


class TestTargetModes:
    def test_per_tuple_is_default_dataset_targets(self, toy_workload):
        dataset = build_dataset(toy_workload)
        X, y = training_matrices(dataset, TargetMode.PER_TUPLE)
        assert X is dataset.X and y is dataset.y

    def test_per_pipeline_targets_absolute(self, toy_workload):
        dataset = build_dataset(toy_workload)
        _, y = training_matrices(dataset, TargetMode.PER_PIPELINE)
        assert np.allclose(y, transform_absolute(dataset.pipeline_times))

    def test_per_query_sums_vectors(self, toy_workload):
        dataset = build_dataset(toy_workload)
        X, y = training_matrices(dataset, TargetMode.PER_QUERY)
        assert X.shape == (dataset.n_queries, dataset.X.shape[1])
        assert np.allclose(X.sum(axis=0), dataset.X.sum(axis=0))
        assert len(y) == dataset.n_queries


class TestSplits:
    def test_split_by_family(self, toy_workload):
        split = split_by_family(toy_workload, ["toy"])
        assert split["train"] == []
        assert len(split["test"]) == len(toy_workload)
        split2 = split_by_family(toy_workload, ["other"])
        assert len(split2["train"]) == len(toy_workload)
