"""Tests for predicates: evaluation, selectivities, distinct fractions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExpressionError
from repro.engine.expressions import (
    Aggregate,
    AggregateFunction,
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    ComputedColumn,
    DEFAULT_LIKE_SELECTIVITY,
    ExpressionKind,
    InListPredicate,
    LikePredicate,
    NotPredicate,
    OrPredicate,
)


@pytest.fixture(scope="module")
def catalog():
    from tests.conftest import build_toy_instance
    return build_toy_instance().catalog


def _data(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return {"o_total": rng.integers(1, 10_001, n)}


class TestComparison:
    def test_evaluate_all_ops(self):
        columns = {"o_total": np.array([1, 5, 10])}
        cases = {
            ComparisonOp.EQ: [False, True, False],
            ComparisonOp.NE: [True, False, True],
            ComparisonOp.LT: [True, False, False],
            ComparisonOp.LE: [True, True, False],
            ComparisonOp.GT: [False, False, True],
            ComparisonOp.GE: [False, True, True],
        }
        for op, expected in cases.items():
            predicate = ComparisonPredicate("orders", "o_total", op, 5)
            assert list(predicate.evaluate(columns)) == expected

    def test_true_selectivity_matches_data(self, catalog):
        predicate = ComparisonPredicate("orders", "o_total",
                                        ComparisonOp.LE, 5000)
        truth = predicate.true_selectivity(catalog)
        observed = predicate.evaluate(_data()).mean()
        assert abs(truth - observed) < 0.02

    def test_estimated_uses_uniformity(self, catalog):
        predicate = ComparisonPredicate("orders", "o_total",
                                        ComparisonOp.LE, 5000)
        assert predicate.estimated_selectivity(catalog) == pytest.approx(
            0.5, abs=0.01)

    def test_eq_estimate_uses_distinct(self, catalog):
        predicate = ComparisonPredicate("orders", "o_total",
                                        ComparisonOp.EQ, 500)
        estimated = predicate.estimated_selectivity(catalog)
        assert 0.0 < estimated < 0.01

    def test_kind(self):
        predicate = ComparisonPredicate("t", "c", ComparisonOp.LT, 1)
        assert predicate.kind is ExpressionKind.COMPARISON

    def test_missing_column_raises(self):
        predicate = ComparisonPredicate("t", "c", ComparisonOp.LT, 1)
        with pytest.raises(ExpressionError):
            predicate.evaluate({"other": np.zeros(3)})


class TestBetween:
    def test_evaluate_inclusive(self):
        predicate = BetweenPredicate("orders", "o_total", 3, 5)
        mask = predicate.evaluate({"o_total": np.array([2, 3, 4, 5, 6])})
        assert list(mask) == [False, True, True, True, False]

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ExpressionError):
            BetweenPredicate("t", "c", 5, 3)

    def test_true_selectivity(self, catalog):
        predicate = BetweenPredicate("orders", "o_total", 1001, 2000)
        assert predicate.true_selectivity(catalog) == pytest.approx(0.1,
                                                                    abs=0.01)

    def test_distinct_fraction(self, catalog):
        predicate = BetweenPredicate("orders", "o_total", 1, 1000)
        assert predicate.true_distinct_fraction(catalog) == pytest.approx(
            0.1, abs=0.01)


class TestInList:
    def test_evaluate(self):
        predicate = InListPredicate("orders", "o_total", [2, 4])
        mask = predicate.evaluate({"o_total": np.array([1, 2, 3, 4])})
        assert list(mask) == [False, True, False, True]

    def test_duplicates_removed(self):
        predicate = InListPredicate("t", "c", [3, 3, 3])
        assert predicate.values == (3,)

    def test_empty_rejected(self):
        with pytest.raises(ExpressionError):
            InListPredicate("t", "c", [])

    def test_estimated_selectivity_scales_with_list(self, catalog):
        small = InListPredicate("orders", "o_total", [1, 2])
        large = InListPredicate("orders", "o_total", list(range(1, 101)))
        assert (large.estimated_selectivity(catalog)
                > small.estimated_selectivity(catalog))


class TestLike:
    def test_evaluate_matches_codes(self):
        predicate = LikePredicate("customer", "c_name", "%x%", [1, 3])
        mask = predicate.evaluate({"c_name": np.array([0, 1, 2, 3])})
        assert list(mask) == [False, True, False, True]

    def test_estimate_is_default_guess(self, catalog):
        predicate = LikePredicate("customer", "c_name", "%x%", [0])
        assert predicate.estimated_selectivity(catalog) == \
            DEFAULT_LIKE_SELECTIVITY

    def test_true_selectivity_from_codes(self, catalog):
        n = catalog.column_stats("customer", "c_name").true_distinct
        predicate = LikePredicate("customer", "c_name", "%x%",
                                  list(range(n // 10)))
        assert predicate.true_selectivity(catalog) == pytest.approx(0.1,
                                                                    abs=0.01)


class TestCompound:
    def test_or_evaluate(self):
        a = ComparisonPredicate("t", "c", ComparisonOp.LE, 2)
        b = ComparisonPredicate("t", "c", ComparisonOp.GE, 8)
        predicate = OrPredicate([a, b])
        mask = predicate.evaluate({"c": np.array([1, 5, 9])})
        assert list(mask) == [True, False, True]
        assert predicate.kind is ExpressionKind.OTHER

    def test_or_selectivity_union_bound(self, catalog):
        a = ComparisonPredicate("orders", "o_total", ComparisonOp.LE, 2000)
        b = ComparisonPredicate("orders", "o_total", ComparisonOp.GE, 9000)
        either = OrPredicate([a, b])
        assert either.true_selectivity(catalog) <= (
            a.true_selectivity(catalog) + b.true_selectivity(catalog) + 1e-9)

    def test_or_needs_two(self):
        a = ComparisonPredicate("t", "c", ComparisonOp.LE, 2)
        with pytest.raises(ExpressionError):
            OrPredicate([a])

    def test_or_mixed_tables_rejected(self):
        a = ComparisonPredicate("t1", "c", ComparisonOp.LE, 2)
        b = ComparisonPredicate("t2", "c", ComparisonOp.LE, 2)
        with pytest.raises(ExpressionError):
            OrPredicate([a, b])

    def test_not_complements(self, catalog):
        inner = ComparisonPredicate("orders", "o_total", ComparisonOp.LE, 3000)
        negated = NotPredicate(inner)
        assert negated.true_selectivity(catalog) == pytest.approx(
            1.0 - inner.true_selectivity(catalog))
        mask = negated.evaluate({"o_total": np.array([1000, 9000])})
        assert list(mask) == [False, True]

    def test_cost_weights(self):
        a = ComparisonPredicate("t", "c", ComparisonOp.LE, 2)
        b = BetweenPredicate("t", "c", 1, 2)
        assert OrPredicate([a, a]).evaluation_cost_weight() == pytest.approx(
            2 * a.evaluation_cost_weight())
        assert b.evaluation_cost_weight() > a.evaluation_cost_weight()


class TestAggregatesAndComputed:
    def test_count(self):
        assert Aggregate(AggregateFunction.COUNT).evaluate({}, 7) == 7.0

    def test_sum_min_max_avg(self):
        columns = {"x": np.array([1.0, 2.0, 3.0])}
        assert Aggregate(AggregateFunction.SUM, "x").evaluate(columns, 3) == 6.0
        assert Aggregate(AggregateFunction.MIN, "x").evaluate(columns, 3) == 1.0
        assert Aggregate(AggregateFunction.MAX, "x").evaluate(columns, 3) == 3.0
        assert Aggregate(AggregateFunction.AVG, "x").evaluate(columns, 3) == 2.0

    def test_sum_without_column_rejected(self):
        with pytest.raises(ExpressionError):
            Aggregate(AggregateFunction.SUM).evaluate({}, 3)

    def test_computed_column(self):
        computed = ComputedColumn("total", ["a", "b"], n_operations=2)
        result = computed.evaluate({"a": np.array([1.0]), "b": np.array([2.0])})
        assert result[0] == 3.0

    def test_computed_needs_inputs(self):
        with pytest.raises(ExpressionError):
            ComputedColumn("x", []).evaluate({})


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(list(ComparisonOp)),
       st.integers(min_value=-20_000, max_value=20_000))
def test_property_selectivity_bounds(op, value):
    from tests.conftest import build_toy_instance
    catalog = build_toy_instance().catalog
    predicate = ComparisonPredicate("orders", "o_total", op, value)
    assert 0.0 <= predicate.true_selectivity(catalog) <= 1.0
    assert 0.0 <= predicate.estimated_selectivity(catalog) <= 1.0
    assert 0.0 <= predicate.true_distinct_fraction(catalog) <= 1.0
