"""Tests for the statistics catalog."""

import pytest

from repro.errors import SchemaError
from repro.engine.catalog import Catalog
from repro.engine.distributions import UniformInt
from repro.engine.schema import Column, DatabaseSchema, TableSchema
from repro.engine.types import DataType


def _schema():
    return DatabaseSchema("db", [
        TableSchema("t", [Column("a", DataType.INT),
                          Column("b", DataType.INT)])])


class TestCatalog:
    def test_roundtrip(self):
        catalog = Catalog(_schema())
        catalog.set_table_stats("t", 100)
        catalog.set_column_distribution("t", "a", UniformInt(1, 10))
        assert catalog.row_count("t") == 100
        assert catalog.column_stats("t", "a").true_distinct == 10
        assert catalog.has_column_stats("t", "a")
        assert not catalog.has_column_stats("t", "b")

    def test_estimated_distinct_is_perturbed_truth(self):
        catalog = Catalog(_schema(), seed=3)
        catalog.set_column_distribution("t", "a", UniformInt(1, 1000))
        stats = catalog.column_stats("t", "a")
        assert stats.estimated_distinct != stats.true_distinct
        assert 0.3 * stats.true_distinct < stats.estimated_distinct \
            < 3.0 * stats.true_distinct

    def test_estimation_error_deterministic(self):
        a = Catalog(_schema(), seed=9)
        b = Catalog(_schema(), seed=9)
        for catalog in (a, b):
            catalog.set_column_distribution("t", "a", UniformInt(1, 500))
        assert (a.column_stats("t", "a").estimated_distinct
                == b.column_stats("t", "a").estimated_distinct)

    def test_unknown_references_rejected(self):
        catalog = Catalog(_schema())
        with pytest.raises(SchemaError):
            catalog.set_table_stats("missing", 5)
        with pytest.raises(SchemaError):
            catalog.set_column_distribution("t", "missing", UniformInt(1, 2))
        with pytest.raises(SchemaError):
            catalog.row_count("t")  # no stats registered yet
        with pytest.raises(SchemaError):
            catalog.column_stats("t", "a")

    def test_validate_complete(self):
        catalog = Catalog(_schema())
        with pytest.raises(SchemaError):
            catalog.validate_complete()
        catalog.set_table_stats("t", 10)
        catalog.set_column_distribution("t", "a", UniformInt(1, 2))
        with pytest.raises(SchemaError):
            catalog.validate_complete()  # column b still missing
        catalog.set_column_distribution("t", "b", UniformInt(1, 2))
        catalog.validate_complete()

    def test_negative_rows_rejected(self):
        catalog = Catalog(_schema())
        with pytest.raises(SchemaError):
            catalog.set_table_stats("t", -1)

    def test_total_rows(self):
        catalog = Catalog(_schema())
        catalog.set_table_stats("t", 42)
        assert catalog.total_rows() == 42
