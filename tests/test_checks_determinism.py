"""Determinism-taint analyzer (DT rules): planted defects and clean twins.

Each rule gets a corpus that fires it and a near-identical corpus that
does not — the clean twin is what separates dataflow from grep. The
seeded-mutation test reintroduces the PR 4 ``CardinalityModel`` bug
(an ``id()``-keyed memo that does not pin the keyed object) and asserts
DT002 flags it, while the shipped pinned shape stays clean.
"""

from __future__ import annotations

import textwrap

from repro.checks.determinism import check_determinism


def _findings(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return check_determinism(roots=[tmp_path])


def _rules(tmp_path, files):
    return {f.rule for f in _findings(tmp_path, files)}


# ---------------------------------------------------------------------------
# DT001 — wall clock into a sink
# ---------------------------------------------------------------------------


def test_dt001_clock_reaches_sink(tmp_path):
    findings = _findings(tmp_path, {"mod.py": """
        import time

        def seed(derive_seed):
            t = time.time()
            derive_seed(t)
    """})
    assert {f.rule for f in findings} == {"DT001"}
    assert "wall-clock" in findings[0].message


def test_dt001_interprocedural_through_helper(tmp_path):
    assert "DT001" in _rules(tmp_path, {"mod.py": """
        import time

        def now():
            return time.time()

        def seed(derive_seed):
            derive_seed(now())
    """})


def test_dt001_clean_constant_seed(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        def seed(derive_seed):
            derive_seed(42)
    """}) == set()


# ---------------------------------------------------------------------------
# DT002 — id() keys of persistent containers (the PR 4 bug class)
# ---------------------------------------------------------------------------

# Pre-PR4 CardinalityModel memo shape: id() key, no pin. CPython reuses
# addresses after GC, so the key can alias two distinct plan operators.
_PR4_MUTANT = """
    class CardinalityModel:
        def __init__(self):
            self._memo = {}

        def estimate(self, op):
            key = id(op)
            if key in self._memo:
                return self._memo[key]
            value = float(len(op.children))
            self._memo[key] = value
            return value
"""

# The shipped fix pins the operator in the stored value, keeping the
# address alive for the memo's lifetime.
_PR4_FIXED = """
    class CardinalityModel:
        def __init__(self):
            self._memo = {}

        def estimate(self, op):
            key = id(op)
            if key in self._memo:
                return self._memo[key][1]
            value = float(len(op.children))
            self._memo[key] = (op, value)
            return value
"""


def test_dt002_seeded_pr4_memo_mutation_flagged(tmp_path):
    findings = [f for f in _findings(tmp_path, {"model.py": _PR4_MUTANT})
                if f.rule == "DT002"]
    assert len(findings) == 1
    assert "pinning" in findings[0].message
    assert "op" in findings[0].message


def test_dt002_pinned_memo_is_clean(tmp_path):
    assert "DT002" not in _rules(tmp_path, {"model.py": _PR4_FIXED})


def test_dt002_module_global_container(tmp_path):
    assert "DT002" in _rules(tmp_path, {"mod.py": """
        _SEEN = {}

        def note(obj):
            _SEEN[id(obj)] = True
    """})


def test_dt002_local_container_is_clean(tmp_path):
    # A container that dies with the call cannot see address reuse.
    assert "DT002" not in _rules(tmp_path, {"mod.py": """
        def dedupe(items):
            seen = {}
            for item in items:
                seen[id(item)] = item
            return list(seen.values())
    """})


# ---------------------------------------------------------------------------
# DT003 — stdlib random outside the rng module
# ---------------------------------------------------------------------------


def test_dt003_random_outside_rng(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        import random

        def pick(items):
            return random.choice(items)
    """}) if f.rule == "DT003"]
    assert len(findings) == 1
    assert "derive_rng" in findings[0].message


def test_dt003_rng_module_is_exempt(tmp_path):
    assert "DT003" not in _rules(tmp_path, {"rng.py": """
        import random

        def make_rng(seed):
            return random.Random(seed)
    """})


# ---------------------------------------------------------------------------
# DT004/DT005 — entropy and hash() into sinks
# ---------------------------------------------------------------------------


def test_dt004_urandom_reaches_sink(tmp_path):
    assert "DT004" in _rules(tmp_path, {"mod.py": """
        import os

        def seed(derive_seed):
            derive_seed(os.urandom(8))
    """})


def test_dt005_hash_reaches_sink(tmp_path):
    assert "DT005" in _rules(tmp_path, {"mod.py": """
        def seed(derive_seed, name):
            derive_seed(hash(name))
    """})


# ---------------------------------------------------------------------------
# DT006 — set iteration order into a sink
# ---------------------------------------------------------------------------


def test_dt006_set_order_reaches_sink(tmp_path):
    assert "DT006" in _rules(tmp_path, {"mod.py": """
        def schedule(names):
            pending = set(names)
            order = list(pending)
            iter_workload_chunks(order)
    """})


def test_dt006_sorted_set_is_clean(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        def schedule(names):
            pending = set(names)
            order = sorted(pending)
            iter_workload_chunks(order)
    """}) == set()


# ---------------------------------------------------------------------------
# DT010 — taint forwarded through a call into a sink
# ---------------------------------------------------------------------------


def test_dt010_forwarded_through_callee(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        import time

        def arm(value):
            FaultSpec(value)

        def trigger():
            arm(time.time())
    """}) if f.rule == "DT010"]
    assert len(findings) == 1
    assert "forwarded" in findings[0].message


def test_dt010_clean_when_argument_is_constant(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        def arm(value):
            FaultSpec(value)

        def trigger():
            arm(17)
    """}) == set()


# ---------------------------------------------------------------------------
# the real repo is clean
# ---------------------------------------------------------------------------


def test_repo_has_no_determinism_findings():
    assert check_determinism() == []
