"""Tests for concrete data generation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.datagen.instances import get_instance
from repro.datagen.tablegen import generate_table_store


class TestTableGen:
    def test_full_scale_row_counts(self, toy_instance):
        store = generate_table_store(toy_instance, scale_fraction=1.0)
        for table in toy_instance.schema.table_names:
            assert store.row_count(table) == \
                toy_instance.catalog.row_count(table)

    def test_scaling(self, toy_instance):
        store = generate_table_store(toy_instance, scale_fraction=0.1)
        assert store.row_count("orders") == pytest.approx(
            toy_instance.catalog.row_count("orders") * 0.1, rel=0.01)

    def test_primary_keys_dense_unique(self, toy_instance):
        store = generate_table_store(toy_instance, scale_fraction=0.3)
        keys = store.columns("customer")["c_id"]
        assert len(np.unique(keys)) == len(keys)
        assert keys.min() == 1 and keys.max() == len(keys)

    def test_foreign_keys_within_scaled_parent(self, toy_instance):
        store = generate_table_store(toy_instance, scale_fraction=0.2)
        fk = store.columns("orders")["o_cust"]
        assert fk.max() <= store.row_count("customer")
        assert fk.min() >= 1

    def test_max_rows_cap(self, toy_instance):
        store = generate_table_store(toy_instance, scale_fraction=1.0,
                                     max_rows_per_table=100)
        assert store.row_count("orders") == 100
        # Foreign keys still stay within the capped parent domain.
        assert store.columns("orders")["o_cust"].max() <= 100

    def test_deterministic(self, toy_instance):
        a = generate_table_store(toy_instance, 0.1, seed=4)
        b = generate_table_store(toy_instance, 0.1, seed=4)
        assert np.array_equal(a.columns("orders")["o_total"],
                              b.columns("orders")["o_total"])

    def test_seed_changes_data(self, toy_instance):
        a = generate_table_store(toy_instance, 0.1, seed=4)
        b = generate_table_store(toy_instance, 0.1, seed=5)
        assert not np.array_equal(a.columns("orders")["o_total"],
                                  b.columns("orders")["o_total"])

    def test_distribution_respected(self, toy_instance):
        store = generate_table_store(toy_instance, scale_fraction=1.0)
        totals = store.columns("orders")["o_total"]
        dist = toy_instance.catalog.column_stats(
            "orders", "o_total").distribution
        observed = (totals <= 5000).mean()
        assert observed == pytest.approx(dist.selectivity_le(5000), abs=0.02)

    def test_invalid_fraction(self, toy_instance):
        with pytest.raises(SchemaError):
            generate_table_store(toy_instance, scale_fraction=0.0)
        with pytest.raises(SchemaError):
            generate_table_store(toy_instance, scale_fraction=1.5)

    def test_corpus_instance_small_scale(self):
        instance = get_instance("tpch_sf1")
        store = generate_table_store(instance, scale_fraction=0.001)
        assert store.row_count("lineitem") == 6000
        assert store.row_count("region") >= 1
