"""Tests (incl. property-based) for column value distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.engine.distributions import (
    CategoricalCodes,
    UniformInt,
    ZipfInt,
    uniform_categorical,
    zipf_categorical,
)

DISTRIBUTIONS = st.one_of(
    st.builds(UniformInt,
              st.integers(-100, 100),
              st.integers(101, 1000)),
    st.builds(ZipfInt, st.integers(-50, 50), st.integers(1, 500),
              st.floats(0.0, 2.0)),
    st.builds(CategoricalCodes,
              st.lists(st.floats(0.01, 10.0), min_size=1, max_size=50)),
)


class TestUniformInt:
    def test_selectivity_le_endpoints(self):
        dist = UniformInt(1, 10)
        assert dist.selectivity_le(0) == 0.0
        assert dist.selectivity_le(10) == 1.0
        assert dist.selectivity_le(5) == pytest.approx(0.5)

    def test_selectivity_eq(self):
        dist = UniformInt(1, 10)
        assert dist.selectivity_eq(3) == pytest.approx(0.1)
        assert dist.selectivity_eq(3.5) == 0.0
        assert dist.selectivity_eq(99) == 0.0

    def test_between(self):
        dist = UniformInt(1, 100)
        assert dist.selectivity_between(11, 20) == pytest.approx(0.1)
        assert dist.selectivity_between(20, 11) == 0.0

    def test_quantile_inverts_selectivity(self):
        dist = UniformInt(1, 1000)
        for p in (0.1, 0.5, 0.9):
            value = dist.quantile(p)
            assert dist.selectivity_le(value) == pytest.approx(p, abs=0.01)

    def test_sample_matches_selectivity(self):
        dist = UniformInt(1, 100)
        rng = np.random.default_rng(0)
        data = dist.sample(100_000, rng)
        assert abs((data <= 50).mean() - dist.selectivity_le(50)) < 0.01

    def test_invalid_range(self):
        with pytest.raises(SchemaError):
            UniformInt(5, 4)


class TestZipfInt:
    def test_skew_concentrates_mass(self):
        flat = ZipfInt(0, 100, 0.0)
        skewed = ZipfInt(0, 100, 1.5)
        assert skewed.selectivity_eq(0) > flat.selectivity_eq(0)

    def test_cdf_monotone(self):
        dist = ZipfInt(0, 50, 1.0)
        values = [dist.selectivity_le(v) for v in range(-1, 51)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_sample_matches_pmf(self):
        dist = ZipfInt(0, 10, 1.0)
        rng = np.random.default_rng(1)
        data = dist.sample(200_000, rng)
        observed = (data == 0).mean()
        assert abs(observed - dist.selectivity_eq(0)) < 0.01

    def test_invalid(self):
        with pytest.raises(SchemaError):
            ZipfInt(0, 0)
        with pytest.raises(SchemaError):
            ZipfInt(0, 5, -1.0)


class TestCategorical:
    def test_frequencies_normalized(self):
        dist = CategoricalCodes([1.0, 3.0])
        assert dist.selectivity_eq(0) == pytest.approx(0.25)
        assert dist.selectivity_eq(1) == pytest.approx(0.75)

    def test_helpers(self):
        assert uniform_categorical(4).selectivity_eq(2) == pytest.approx(0.25)
        skewed = zipf_categorical(10, 1.0)
        assert skewed.selectivity_eq(0) > skewed.selectivity_eq(9)

    def test_invalid(self):
        with pytest.raises(SchemaError):
            CategoricalCodes([])
        with pytest.raises(SchemaError):
            CategoricalCodes([-1.0, 2.0])


@settings(max_examples=60, deadline=None)
@given(DISTRIBUTIONS, st.floats(-1e4, 1e4))
def test_property_cdf_in_unit_interval(dist, value):
    assert 0.0 <= dist.selectivity_le(value) <= 1.0
    assert 0.0 <= dist.selectivity_eq(value) <= 1.0


@settings(max_examples=60, deadline=None)
@given(DISTRIBUTIONS, st.floats(0.0, 1.0))
def test_property_quantile_within_domain(dist, p):
    value = dist.quantile(p)
    assert dist.min_value <= value <= dist.max_value


@settings(max_examples=40, deadline=None)
@given(DISTRIBUTIONS, st.floats(-1e3, 1e3), st.floats(0, 500))
def test_property_between_consistent_with_le(dist, low, width):
    high = low + width
    between = dist.selectivity_between(low, high)
    assert -1e-9 <= between <= 1.0 + 1e-9
    assert between <= dist.selectivity_le(high) + 1e-9


@settings(max_examples=30, deadline=None)
@given(DISTRIBUTIONS)
def test_property_in_list_bounded_by_union(dist):
    values = [dist.quantile(p) for p in (0.1, 0.5, 0.9)]
    combined = dist.selectivity_in(values)
    assert combined <= sum(dist.selectivity_eq(v) for v in set(values)) + 1e-9
    assert 0.0 <= combined <= 1.0


@settings(max_examples=20, deadline=None)
@given(DISTRIBUTIONS)
def test_property_samples_within_domain(dist):
    rng = np.random.default_rng(0)
    data = dist.sample(500, rng)
    assert data.min() >= dist.min_value
    assert data.max() <= dist.max_value
