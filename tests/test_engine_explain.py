"""Tests for plan / pipeline explanation rendering."""

import pytest

from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.explain import explain, explain_pipelines
from repro.engine.expressions import (
    Aggregate,
    AggregateFunction,
    ComparisonOp,
    ComparisonPredicate,
)
from repro.engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalScan,
    LogicalTopK,
)
from repro.engine.optimizer import Optimizer


@pytest.fixture
def plan(toy_instance):
    optimizer = Optimizer(toy_instance.schema, toy_instance.catalog)
    logical = LogicalTopK(
        LogicalGroupBy(
            LogicalJoin(
                LogicalScan("customer", [ComparisonPredicate(
                    "customer", "c_balance", ComparisonOp.GE, 0)]),
                LogicalScan("orders"),
                toy_instance.schema.edge_between("customer", "orders")),
            [("orders", "o_status")],
            [Aggregate(AggregateFunction.COUNT)]),
        [("#computed", "agg_0")], 5)
    return optimizer.optimize(logical, "explained")


class TestExplain:
    def test_tree_structure(self, plan):
        text = explain(plan)
        assert "TopK(k=5)" in text
        assert "GroupBy(orders.o_status; 1 aggregates)" in text
        assert "HashJoin(" in text
        assert "TableScan(customer [1 predicates])" in text
        # Indentation reflects depth.
        lines = text.splitlines()
        assert lines[1].startswith("- ")
        assert lines[2].startswith("  - ")

    def test_cardinalities_shown_with_model(self, plan, toy_instance):
        model = ExactCardinalityModel(toy_instance.catalog)
        text = explain(plan, model)
        assert "card=" in text

    def test_pipelines_without_model(self, plan):
        text = explain_pipelines(plan)
        assert "Pipeline 0:" in text
        assert "TableScan_Scan" in text
        assert "in=" not in text  # flows require a model

    def test_pipelines_with_model(self, plan, toy_instance):
        model = ExactCardinalityModel(toy_instance.catalog)
        text = explain_pipelines(plan, model)
        assert "in=" in text and "out=" in text
        assert "materializes=" in text
        assert "state=" in text  # probe stage shows hash-table size

    def test_query_name_shown(self, plan):
        assert "explained" in explain(plan)
        assert "explained" in explain_pipelines(plan)
