"""Tests for statistics collection from concrete data (ANALYZE loop)."""

import numpy as np
import pytest

from repro.engine.executor import TableStore
from repro.engine.schema import Column, DatabaseSchema, TableSchema
from repro.engine.types import DataType
from repro.datagen.statistics import (
    EmpiricalDistribution,
    collect_catalog,
    discover_join_edges,
)
from repro.datagen.tablegen import generate_table_store


class TestEmpiricalDistribution:
    def test_exact_frequencies(self):
        data = np.array([1, 1, 1, 2, 4])
        dist = EmpiricalDistribution.from_column(data)
        assert dist.n_distinct == 3
        assert dist.selectivity_eq(1) == pytest.approx(0.6)
        assert dist.selectivity_eq(3) == 0.0
        assert dist.selectivity_le(2) == pytest.approx(0.8)
        assert dist.min_value == 1 and dist.max_value == 4

    def test_quantile(self):
        data = np.arange(100)
        dist = EmpiricalDistribution.from_column(data)
        assert dist.quantile(0.5) == pytest.approx(49, abs=2)

    def test_wide_domain_compressed(self):
        data = np.arange(50_000)
        dist = EmpiricalDistribution.from_column(data, max_bins=1000)
        assert dist.n_distinct <= 1000
        assert dist.selectivity_le(25_000) == pytest.approx(0.5, abs=0.01)

    def test_sample_respects_pmf(self):
        dist = EmpiricalDistribution(np.array([0.0, 1.0]),
                                     np.array([9.0, 1.0]))
        rng = np.random.default_rng(0)
        data = dist.sample(20_000, rng)
        assert abs((data == 0).mean() - 0.9) < 0.02

    def test_empty_rejected(self):
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            EmpiricalDistribution(np.array([]), np.array([]))


class TestCollectCatalog:
    def test_roundtrip_on_generated_data(self, toy_instance):
        """ANALYZE over generated data must recover the generative
        statistics (the paper's scalable-instance-onboarding loop)."""
        store = generate_table_store(toy_instance, scale_fraction=1.0,
                                     seed=5)
        collected = collect_catalog(toy_instance.schema, store)
        collected.validate_complete()
        assert collected.row_count("orders") == \
            toy_instance.catalog.row_count("orders")
        # Selectivity agreement on a numeric column.
        truth = toy_instance.catalog.column_stats(
            "orders", "o_total").distribution
        measured = collected.column_stats("orders", "o_total").distribution
        assert measured.selectivity_le(5000) == pytest.approx(
            truth.selectivity_le(5000), abs=0.02)

    def test_distinct_counts_recovered(self, toy_instance):
        store = generate_table_store(toy_instance, scale_fraction=1.0,
                                     seed=5)
        collected = collect_catalog(toy_instance.schema, store)
        assert collected.column_stats("customer", "c_id").true_distinct == \
            store.row_count("customer")

    def test_missing_data_rejected(self, toy_instance):
        from repro.errors import SchemaError
        store = TableStore()
        store.put_table("orders", {"o_id": np.arange(5)})
        with pytest.raises(Exception):
            collect_catalog(toy_instance.schema, store)


class TestJoinDiscovery:
    def test_discovers_declared_edges(self, toy_instance):
        store = generate_table_store(toy_instance, scale_fraction=0.5,
                                     seed=6)
        edges = discover_join_edges(toy_instance.schema, store)
        found = {(e.left_table, e.left_column, e.right_table, e.right_column)
                 for e in edges}
        assert ("orders", "o_cust", "customer", "c_id") in found
        assert ("orders", "o_item", "item", "i_id") in found

    def test_non_contained_columns_rejected(self):
        schema = DatabaseSchema("d", [
            TableSchema("a", [Column("id", DataType.BIGINT),
                              Column("other_id", DataType.BIGINT)],
                        primary_key="id"),
            TableSchema("other", [Column("id", DataType.BIGINT)],
                        primary_key="id"),
        ])
        store = TableStore()
        store.put_table("a", {"id": np.arange(1, 101),
                              "other_id": np.arange(5000, 5100)})
        store.put_table("other", {"id": np.arange(1, 51)})
        edges = discover_join_edges(schema, store)
        assert not [e for e in edges if e.left_column == "other_id"]

    def test_tpch_style_names(self):
        schema = DatabaseSchema("d", [
            TableSchema("orders", [Column("o_orderkey", DataType.BIGINT),
                                   Column("o_custkey", DataType.BIGINT)],
                        primary_key="o_orderkey"),
            TableSchema("customer", [Column("c_custkey", DataType.BIGINT)],
                        primary_key="c_custkey"),
        ])
        store = TableStore()
        store.put_table("customer", {"c_custkey": np.arange(1, 1001)})
        store.put_table("orders", {
            "o_orderkey": np.arange(1, 5001),
            "o_custkey": np.random.default_rng(0).integers(1, 1001, 5000)})
        edges = discover_join_edges(schema, store)
        found = {(e.left_table, e.left_column, e.right_table)
                 for e in edges}
        assert ("orders", "o_custkey", "customer") in found
