"""Tests for the gradient-boosted tree framework."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrainingError
from repro.trees import (
    BinMapper,
    BoostingParams,
    Tree,
    TreeNode,
    dumps_model,
    get_objective,
    loads_model,
    train_boosted_trees,
)
from repro.trees.grow import GrowthParams, TreeGrower


def _toy_data(n=2000, f=8, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 100, size=(n, f))
    y = (np.where(X[:, 0] > 50, 10.0, 0.0) + 0.2 * X[:, 1]
         + rng.normal(0, 0.05, n))
    return X, y


class TestBinMapper:
    def test_bins_are_order_preserving(self):
        X = np.array([[1.0], [5.0], [3.0], [9.0]])
        mapper = BinMapper(max_bins=255).fit(X)
        binned = mapper.transform(X)[:, 0]
        assert binned[0] < binned[2] < binned[1] < binned[3]

    def test_bin_threshold_equivalence(self):
        """Splitting on a bin boundary must equal a raw-value split."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 1))
        mapper = BinMapper(max_bins=16).fit(X)
        binned = mapper.transform(X)[:, 0]
        for boundary in range(mapper.n_bins(0) - 1):
            threshold = mapper.bin_upper_bound(0, boundary)
            assert ((binned <= boundary) == (X[:, 0] <= threshold)).all()

    def test_constant_column_gets_one_bin(self):
        X = np.full((10, 1), 3.14)
        mapper = BinMapper().fit(X)
        assert mapper.n_bins(0) == 1

    def test_max_bins_respected(self):
        X = np.random.default_rng(0).normal(size=(10_000, 1))
        mapper = BinMapper(max_bins=32).fit(X)
        assert mapper.n_bins(0) <= 32

    def test_rejects_nan(self):
        with pytest.raises(TrainingError):
            BinMapper().fit(np.array([[np.nan]]))

    def test_rejects_bad_max_bins(self):
        with pytest.raises(TrainingError):
            BinMapper(max_bins=1)
        with pytest.raises(TrainingError):
            BinMapper(max_bins=300)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(TrainingError):
            BinMapper().transform(np.zeros((1, 1)))


class TestTree:
    def _two_level(self):
        # root: x0 <= 5 -> leaf(1.0) else x1 <= 2 -> leaf(2.0) / leaf(3.0)
        return Tree.from_nodes([
            TreeNode(feature=0, threshold=5.0, left=1, right=2),
            TreeNode(value=1.0),
            TreeNode(feature=1, threshold=2.0, left=3, right=4),
            TreeNode(value=2.0),
            TreeNode(value=3.0),
        ])

    def test_predict_one_routes_correctly(self):
        tree = self._two_level()
        assert tree.predict_one(np.array([4.0, 0.0])) == 1.0
        assert tree.predict_one(np.array([6.0, 1.0])) == 2.0
        assert tree.predict_one(np.array([6.0, 3.0])) == 3.0

    def test_batch_matches_scalar(self):
        tree = self._two_level()
        X = np.random.default_rng(0).uniform(0, 10, size=(200, 2))
        batch = tree.predict(X)
        scalar = np.array([tree.predict_one(x) for x in X])
        assert np.array_equal(batch, scalar)

    def test_counts(self):
        tree = self._two_level()
        assert tree.n_nodes == 5
        assert tree.n_leaves == 3
        assert tree.max_depth == 2
        assert list(tree.used_features()) == [0, 1]

    def test_single_leaf(self):
        tree = Tree.single_leaf(7.0)
        assert tree.predict_one(np.zeros(3)) == 7.0
        assert tree.max_depth == 0

    def test_dict_roundtrip(self):
        tree = self._two_level()
        clone = Tree.from_dict(tree.to_dict())
        X = np.random.default_rng(1).uniform(0, 10, size=(50, 2))
        assert np.array_equal(tree.predict(X), clone.predict(X))

    def test_invalid_child_rejected(self):
        with pytest.raises(TrainingError):
            Tree.from_nodes([TreeNode(feature=0, threshold=0, left=5, right=6)])


class TestGrower:
    def test_learns_step_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 100, size=(2000, 8))
        y = np.where(X[:, 0] > 50, 100.0, 0.0) + rng.normal(0, 0.05, 2000)
        mapper = BinMapper().fit(X)
        grower = TreeGrower(mapper.transform(X), mapper, GrowthParams(num_leaves=8))
        grad = (np.zeros_like(y) - y)  # L2 gradient at prediction 0
        tree = grower.grow(grad, np.ones_like(y))
        # First split should be on the dominant step feature 0.
        assert tree.feature[0] == 0
        assert abs(tree.threshold[0] - 50) < 5

    def test_num_leaves_bound(self):
        X, y = _toy_data()
        mapper = BinMapper().fit(X)
        grower = TreeGrower(mapper.transform(X), mapper,
                            GrowthParams(num_leaves=5))
        tree = grower.grow(-y, np.ones_like(y))
        assert tree.n_leaves <= 5

    def test_min_data_in_leaf_respected(self):
        X, y = _toy_data(n=500)
        mapper = BinMapper().fit(X)
        params = GrowthParams(num_leaves=31, min_data_in_leaf=50)
        grower = TreeGrower(mapper.transform(X), mapper, params)
        tree = grower.grow(-y, np.ones_like(y))
        # Check every leaf holds >= 50 training rows.
        leaves = tree.predict(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 50

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).uniform(size=(100, 3))
        grad = np.zeros(100)
        mapper = BinMapper().fit(X)
        tree = TreeGrower(mapper.transform(X), mapper, GrowthParams()).grow(
            grad, np.ones(100))
        assert tree.n_leaves == 1

    def test_feature_mask_restricts_splits(self):
        X, y = _toy_data()
        mapper = BinMapper().fit(X)
        mask = np.zeros(X.shape[1], dtype=bool)
        mask[1] = True
        grower = TreeGrower(mapper.transform(X), mapper,
                            GrowthParams(num_leaves=8), feature_mask=mask)
        tree = grower.grow(-y, np.ones_like(y))
        assert set(tree.used_features()) <= {1}


class TestObjectives:
    def test_l2_gradient(self):
        objective = get_objective("l2")
        y = np.array([1.0, 2.0])
        pred = np.array([2.0, 2.0])
        grad, hess = objective.gradient_hessian(y, pred)
        assert np.allclose(grad, [1.0, 0.0])
        assert np.allclose(hess, [1.0, 1.0])

    def test_mape_weights_small_targets_more(self):
        objective = get_objective("mape")
        y = np.array([0.001, 100.0])
        grad, hess = objective.gradient_hessian(y, y + 1.0)
        # Clamped at eps=1: tiny targets weight 1, big ones 1/100.
        assert grad[0] > grad[1]

    def test_unknown_objective(self):
        with pytest.raises(TrainingError):
            get_objective("nope")

    def test_l1_initial_is_median(self):
        objective = get_objective("l1")
        assert objective.initial_prediction(np.array([1.0, 9.0, 2.0])) == 2.0


class TestBoosting:
    def test_fits_nonlinear_function(self):
        X, y = _toy_data()
        model = train_boosted_trees(X, y, BoostingParams(
            n_rounds=50, objective="l2", validation_fraction=0.0))
        mae = np.mean(np.abs(model.predict(X) - y))
        assert mae < 0.5 * np.std(y)

    def test_more_rounds_reduce_training_loss(self):
        X, y = _toy_data()
        model = train_boosted_trees(X, y, BoostingParams(
            n_rounds=30, validation_fraction=0.0, objective="l2"))
        losses = model.train_loss_curve
        assert losses[-1] < losses[0]

    def test_predict_one_matches_batch(self):
        X, y = _toy_data(n=500)
        model = train_boosted_trees(X, y, BoostingParams(n_rounds=10))
        batch = model.predict(X[:20])
        scalar = np.array([model.predict_one(x) for x in X[:20]])
        assert np.allclose(batch, scalar)

    def test_early_stopping_truncates(self):
        X, y = _toy_data(n=800)
        model = train_boosted_trees(X, y, BoostingParams(
            n_rounds=200, early_stopping_rounds=5, objective="l2"))
        assert model.n_trees < 200

    def test_truncated_model(self):
        X, y = _toy_data(n=500)
        model = train_boosted_trees(X, y, BoostingParams(n_rounds=20))
        short = model.truncated(5)
        assert short.n_trees == 5
        with pytest.raises(TrainingError):
            model.truncated(100)

    def test_sample_weight_changes_model(self):
        X, y = _toy_data(n=500)
        w = np.ones_like(y)
        w[:250] = 100.0
        base = train_boosted_trees(X, y, BoostingParams(n_rounds=10))
        weighted = train_boosted_trees(X, y, BoostingParams(n_rounds=10),
                                       sample_weight=w)
        assert not np.allclose(base.predict(X[:50]), weighted.predict(X[:50]))

    def test_feature_importances_identify_signal(self):
        X, y = _toy_data()
        model = train_boosted_trees(X, y, BoostingParams(
            n_rounds=20, objective="l2"))
        importances = model.feature_importances()
        assert set(np.argsort(importances)[-2:]) == {0, 1}

    def test_input_validation(self):
        with pytest.raises(TrainingError):
            train_boosted_trees(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(TrainingError):
            train_boosted_trees(np.zeros(5), np.zeros(5))
        with pytest.raises(TrainingError):
            BoostingParams(learning_rate=0.0).validate()

    def test_seed_reproducibility(self):
        X, y = _toy_data(n=400)
        a = train_boosted_trees(X, y, BoostingParams(n_rounds=8, seed=3))
        b = train_boosted_trees(X, y, BoostingParams(n_rounds=8, seed=3))
        assert np.allclose(a.predict(X[:30]), b.predict(X[:30]))


class TestSerialization:
    def test_roundtrip_preserves_predictions(self):
        X, y = _toy_data(n=500)
        model = train_boosted_trees(X, y, BoostingParams(n_rounds=12))
        clone = loads_model(dumps_model(model))
        assert np.allclose(model.predict(X[:50]), clone.predict(X[:50]))
        assert clone.n_features == model.n_features

    def test_rejects_garbage(self):
        with pytest.raises(TrainingError):
            loads_model("not json at all {")
        with pytest.raises(TrainingError):
            loads_model('{"format": "other"}')


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=40))
def test_property_monotone_feature_monotone_prediction(n_distinct):
    """A tree trained on a monotone 1-feature mapping stays monotone at
    the training points (split thresholds preserve order)."""
    X = np.arange(n_distinct, dtype=float)[:, None]
    y = X[:, 0] ** 2
    model = train_boosted_trees(
        X, y, BoostingParams(n_rounds=20, validation_fraction=0.0,
                             objective="l2",
                             growth=GrowthParams(num_leaves=31,
                                                 min_data_in_leaf=1)))
    predictions = model.predict(X)
    assert (np.diff(predictions) >= -1e-9).all()


class TestHistogramRegression:
    """The bincount-per-feature histogram and the single-sort BinMapper
    must reproduce their straightforward reference formulations exactly."""

    @staticmethod
    def _reference_histogram(binned, rows, grad, hess, max_bins):
        """The flat formulation: offset all codes into one bincount."""
        n_features = binned.shape[1]
        sub = binned[rows].astype(np.int64)
        offsets = np.arange(n_features, dtype=np.int64) * max_bins
        flat = (sub + offsets[None, :]).ravel()
        size = n_features * max_bins
        g = np.bincount(flat, weights=np.repeat(grad[rows], n_features),
                        minlength=size)
        h = np.bincount(flat, weights=np.repeat(hess[rows], n_features),
                        minlength=size)
        c = np.bincount(flat, minlength=size)
        return (g.reshape(n_features, max_bins),
                h.reshape(n_features, max_bins),
                c.reshape(n_features, max_bins).astype(np.int64))

    @pytest.mark.parametrize("max_bins", [4, 16, 255])
    @pytest.mark.parametrize("n_rows,n_features", [(1, 1), (200, 7), (500, 3)])
    def test_bit_identical_to_flat_formulation(self, max_bins, n_rows,
                                               n_features):
        rng = np.random.default_rng(max_bins * 1000 + n_rows)
        X = rng.normal(size=(n_rows, n_features))
        X[:, -1] = rng.integers(0, 3, size=n_rows)  # low-cardinality column
        grad = rng.normal(size=n_rows)
        hess = rng.uniform(0.1, 2.0, size=n_rows)
        mapper = BinMapper(max_bins=max_bins).fit(X)
        grower = TreeGrower(mapper.transform(X), mapper, GrowthParams())
        for rows in (np.arange(n_rows, dtype=np.int64),
                     np.arange(0, n_rows, 2, dtype=np.int64),
                     np.empty(0, dtype=np.int64)):
            hist = grower._build_histogram(rows, grad, hess)
            ref_g, ref_h, ref_c = self._reference_histogram(
                grower.binned, rows, grad, hess, max_bins)
            assert np.array_equal(hist.grad, ref_g)
            assert np.array_equal(hist.hess, ref_h)
            assert np.array_equal(hist.count, ref_c)

    @staticmethod
    def _reference_fit_bounds(X, max_bins):
        """The per-column formulation the single-sort fit replaced."""
        bounds = []
        for j in range(X.shape[1]):
            values = np.unique(X[:, j])
            if len(values) > max_bins:
                quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
                upper = np.unique(np.quantile(X[:, j], quantiles))
            elif len(values) == 1:
                upper = np.empty(0, dtype=np.float64)
            else:
                upper = (values[:-1] + values[1:]) / 2.0
            bounds.append(np.asarray(upper, dtype=np.float64))
        return bounds

    @pytest.mark.parametrize("max_bins", [2, 16, 255])
    def test_binmapper_fit_matches_per_column_reference(self, max_bins):
        rng = np.random.default_rng(max_bins)
        X = np.column_stack([
            rng.normal(size=600),                  # continuous
            rng.integers(0, 4, size=600).astype(float),  # few distinct
            np.full(600, 2.5),                     # constant
            np.repeat(rng.normal(size=60), 10),    # heavy duplicates
        ])
        mapper = BinMapper(max_bins=max_bins).fit(X)
        reference = self._reference_fit_bounds(X, max_bins)
        for j, ref in enumerate(reference):
            assert np.array_equal(mapper._bounds[j], ref)

    def test_binmapper_fit_single_row(self):
        mapper = BinMapper().fit(np.array([[1.0, 2.0]]))
        assert mapper.n_bins(0) == 1 and mapper.n_bins(1) == 1
