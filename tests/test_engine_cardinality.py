"""Tests for exact / estimated / distorted cardinality models."""

import numpy as np
import pytest

from repro.engine.cardinality import (
    DistortedCardinalityModel,
    EstimatedCardinalityModel,
    ExactCardinalityModel,
    cardenas,
)
from repro.engine.expressions import (
    Aggregate,
    AggregateFunction,
    ComparisonOp,
    ComparisonPredicate,
)
from repro.engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalScan,
    LogicalSort,
)
from repro.engine.optimizer import Optimizer, OptimizerConfig


@pytest.fixture
def optimizer(toy_instance):
    return Optimizer(toy_instance.schema, toy_instance.catalog,
                     OptimizerConfig(enable_small_table_elimination=False,
                                     enable_index_nl_join=False))


@pytest.fixture
def exact(toy_instance):
    return ExactCardinalityModel(toy_instance.catalog)


@pytest.fixture
def estimated(toy_instance):
    return EstimatedCardinalityModel(toy_instance.catalog)


def _edge(toy_instance, left, right):
    return toy_instance.schema.edge_between(left, right)


class TestCardenas:
    def test_small_cases(self):
        assert cardenas(1, 100) == 1.0
        assert cardenas(10, 0) == 0.0
        # With n >> d, nearly all distinct values appear.
        assert cardenas(10, 10_000) == pytest.approx(10.0, rel=1e-3)

    def test_monotone_in_rows(self):
        values = [cardenas(1000, n) for n in (10, 100, 1000, 10_000)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_bounded_by_distinct(self):
        assert cardenas(50, 10_000) <= 50.0


class TestScans:
    def test_unfiltered_scan(self, optimizer, exact, toy_instance):
        plan = optimizer.optimize(LogicalScan("orders"))
        assert exact.output_cardinality(plan.root) == \
            toy_instance.catalog.row_count("orders")

    def test_filter_selectivity(self, optimizer, exact):
        plan = optimizer.optimize(LogicalScan("orders", [
            ComparisonPredicate("orders", "o_total", ComparisonOp.LE, 1000)]))
        assert exact.output_cardinality(plan.root) == pytest.approx(
            5000, rel=0.02)

    def test_correlation_factor_applies_to_truth_only(
            self, optimizer, exact, estimated):
        predicates = [
            ComparisonPredicate("orders", "o_total", ComparisonOp.LE, 5000),
            ComparisonPredicate("orders", "o_date", ComparisonOp.LE, 9000)]
        correlated = optimizer.optimize(
            LogicalScan("orders", predicates, correlation_factor=1.8))
        independent = optimizer.optimize(
            LogicalScan("orders", predicates, correlation_factor=1.0))
        assert exact.output_cardinality(correlated.root) == pytest.approx(
            1.8 * exact.output_cardinality(independent.root))
        assert estimated.output_cardinality(correlated.root) == pytest.approx(
            estimated.output_cardinality(independent.root))


class TestJoins:
    def test_fk_join_preserves_fact_side(self, optimizer, exact,
                                         toy_instance):
        logical = LogicalJoin(LogicalScan("customer"), LogicalScan("orders"),
                              _edge(toy_instance, "customer", "orders"))
        plan = optimizer.optimize(logical)
        n_orders = toy_instance.catalog.row_count("orders")
        assert exact.output_cardinality(plan.root) == pytest.approx(
            n_orders, rel=0.01)

    def test_filtered_dimension_scales_join(self, optimizer, exact,
                                            toy_instance):
        filtered = LogicalScan("customer", [ComparisonPredicate(
            "customer", "c_balance", ComparisonOp.LE, 4500)])
        logical = LogicalJoin(filtered, LogicalScan("orders"),
                              _edge(toy_instance, "customer", "orders"))
        plan = optimizer.optimize(logical)
        n_orders = toy_instance.catalog.row_count("orders")
        assert exact.output_cardinality(plan.root) == pytest.approx(
            n_orders / 2, rel=0.05)

    def test_semi_join_bounded_by_probe(self, optimizer, exact, toy_instance):
        logical = LogicalJoin(LogicalScan("customer"), LogicalScan("orders"),
                              _edge(toy_instance, "customer", "orders"),
                              kind="semi")
        plan = optimizer.optimize(logical)
        n_orders = toy_instance.catalog.row_count("orders")
        semi = exact.output_cardinality(plan.root)
        assert 0 < semi <= n_orders

    def test_anti_join_complements_semi(self, optimizer, exact, toy_instance):
        """semi(probe) + anti(probe) must equal the probe cardinality."""
        edge = _edge(toy_instance, "customer", "orders")
        semi = optimizer.optimize(LogicalJoin(
            LogicalScan("customer"), LogicalScan("orders"), edge, kind="semi"))
        anti = optimizer.optimize(LogicalJoin(
            LogicalScan("customer"), LogicalScan("orders"), edge, kind="anti"))
        total = (exact.output_cardinality(semi.root)
                 + exact.output_cardinality(anti.root))
        probe = exact.output_cardinality(semi.root.probe_child)
        assert total == pytest.approx(probe, rel=0.01)

    def test_estimated_misses_fanout(self, toy_instance, optimizer,
                                     estimated, exact):
        edge = _edge(toy_instance, "customer", "orders")
        fanned = type(edge)(edge.left_table, edge.left_column,
                            edge.right_table, edge.right_column, fanout=3.0)
        logical = LogicalJoin(LogicalScan("customer"), LogicalScan("orders"),
                              fanned)
        plan = optimizer.optimize(logical)
        assert exact.output_cardinality(plan.root) > \
            1.5 * estimated.output_cardinality(plan.root)


class TestAggregatesAndLimits:
    def test_group_count_respects_domain_filter(self, optimizer, exact):
        logical = LogicalGroupBy(
            LogicalScan("customer", [ComparisonPredicate(
                "customer", "c_nation", ComparisonOp.LE, 5)]),
            [("customer", "c_nation")],
            [Aggregate(AggregateFunction.COUNT)])
        plan = optimizer.optimize(logical)
        assert exact.output_cardinality(plan.root) == pytest.approx(6, abs=1)

    def test_simple_agg_is_one(self, optimizer, exact):
        logical = LogicalGroupBy(LogicalScan("orders"), [],
                                 [Aggregate(AggregateFunction.COUNT)])
        plan = optimizer.optimize(logical)
        assert exact.output_cardinality(plan.root) == 1.0

    def test_limit_caps(self, optimizer, exact):
        logical = LogicalLimit(
            LogicalSort(LogicalScan("orders"), [("orders", "o_total")]), 7)
        plan = optimizer.optimize(logical)
        assert exact.output_cardinality(plan.root) == 7.0

    def test_memoization_reset(self, optimizer, exact):
        plan = optimizer.optimize(LogicalScan("orders"))
        first = exact.output_cardinality(plan.root)
        exact.reset()
        assert exact.output_cardinality(plan.root) == first


class TestDistorted:
    def test_identity_at_factor_one(self, optimizer, exact, toy_instance):
        plan = optimizer.optimize(LogicalScan("orders", [ComparisonPredicate(
            "orders", "o_total", ComparisonOp.LE, 1000)]))
        distorted = DistortedCardinalityModel(
            ExactCardinalityModel(toy_instance.catalog), 1.0)
        assert distorted.output_cardinality(plan.root) == pytest.approx(
            exact.output_cardinality(plan.root))

    def test_distortion_within_bounds(self, optimizer, toy_instance):
        plan = optimizer.optimize(LogicalScan("orders", [ComparisonPredicate(
            "orders", "o_total", ComparisonOp.LE, 1000)]))
        base = ExactCardinalityModel(toy_instance.catalog)
        truth = base.output_cardinality(plan.root)
        for factor in (2.0, 10.0, 100.0):
            distorted = DistortedCardinalityModel(
                ExactCardinalityModel(toy_instance.catalog), factor, seed=1)
            value = distorted.output_cardinality(plan.root)
            assert truth / factor <= value <= truth * factor

    def test_base_tables_not_distorted(self, optimizer, toy_instance):
        plan = optimizer.optimize(LogicalScan("orders"))
        distorted = DistortedCardinalityModel(
            ExactCardinalityModel(toy_instance.catalog), 1000.0, seed=2)
        assert distorted.output_cardinality(plan.root) == \
            toy_instance.catalog.row_count("orders")

    def test_deterministic_per_seed(self, optimizer, toy_instance):
        plan = optimizer.optimize(LogicalScan("orders", [ComparisonPredicate(
            "orders", "o_total", ComparisonOp.LE, 1000)]))
        values = []
        for _ in range(2):
            model = DistortedCardinalityModel(
                ExactCardinalityModel(toy_instance.catalog), 10.0, seed=5)
            values.append(model.output_cardinality(plan.root))
        assert values[0] == values[1]

    def test_invalid_factor(self, toy_instance):
        from repro.errors import CardinalityError
        with pytest.raises(CardinalityError):
            DistortedCardinalityModel(
                ExactCardinalityModel(toy_instance.catalog), 0.5)


class TestMemoLifetime:
    """The memo is keyed by ``id(op)``; it must therefore keep each
    memoized operator alive. If it did not, a discarded candidate
    operator's id could be recycled by a later allocation and the memo
    would serve the dead operator's cardinality for the new one — stale
    hits whose occurrence depends on allocation history, which made
    plans differ between processes (caught by the parallel pipeline's
    bit-identity check)."""

    def test_memo_pins_operators(self, exact, optimizer):
        import gc
        import weakref

        plan = optimizer.optimize(LogicalScan("orders"))
        exact.output_cardinality(plan.root)
        ref = weakref.ref(plan.root)
        del plan
        gc.collect()
        assert ref() is not None, "memoized operator must stay pinned"
        exact.reset()
        gc.collect()
        assert ref() is None

    def test_memo_hit_returns_same_value(self, exact, optimizer):
        plan = optimizer.optimize(LogicalScan("orders"))
        first = exact.output_cardinality(plan.root)
        assert exact.output_cardinality(plan.root) == first
