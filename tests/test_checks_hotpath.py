"""Hot-path cost analyzer (HP rules): planted defects and clean twins.

Two seeded-mutation tests guard the roadmap's perf debts the way the
RS006 oracle guards the PR 5 probe leak: one reintroduces the PR 4
``_build_histogram`` O(rows x features) temporaries shape into a copy
of the *real* ``trees/grow.py`` and asserts HP002 flags it; the other
plants a per-row ``process_map`` submission variant and asserts HP003.
The repo-level test pins ``check_hotpath()`` to exactly the two
grandfathered findings ``checks_baseline.toml`` suppresses.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.checks.hotpath import (
    DEFAULT_HOT_ROOTS,
    DEFAULT_PER_ELEMENT_ROOTS,
    check_hotpath,
    load_hot_root_config,
)
from repro.errors import CheckError

_REPO = Path(__file__).resolve().parents[1]
_GROW_SOURCE = _REPO / "src" / "repro" / "trees" / "grow.py"


def _findings(tmp_path, files, hot_roots=("hot",), per_element_roots=()):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return check_hotpath(roots=[tmp_path], hot_roots=list(hot_roots),
                         per_element_roots=list(per_element_roots))


def _rules(tmp_path, files, **kwargs):
    return {f.rule for f in _findings(tmp_path, files, **kwargs)}


_NATIVE = """
    import ctypes

    class Native:
        def __init__(self, path):
            self._lib = ctypes.CDLL(path)
            self._eval = getattr(self._lib, "predict")

        def hot(self, rows):
            out = []
            for row in rows:
                out.append(self._eval(row))
            return out

        def batch(self, buffer):
            return self._eval(buffer)

        def one(self, row):
            return self._eval(row)

        def via_helper(self, rows):
            return [self.one(row) for row in rows]
    """


# ---------------------------------------------------------------------------
# hot-root gating (rules only fire where a root can reach)
# ---------------------------------------------------------------------------


def test_hp001_ffi_call_in_hot_loop(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": _NATIVE},
                                     hot_roots=["Native.hot"])
                if f.rule == "HP001"]
    assert len(findings) == 1
    assert "FFI round-trip" in findings[0].message
    assert "hot via Native.hot" in findings[0].message


def test_hp001_batched_ffi_call_is_clean(tmp_path):
    assert _rules(tmp_path, {"mod.py": _NATIVE},
                  hot_roots=["Native.batch"]) == set()


def test_hp001_via_callee_summary(tmp_path):
    # The loop itself is FFI-free; the effect arrives through the cost
    # summary of the helper it calls per element.
    findings = [f for f in _findings(tmp_path, {"mod.py": _NATIVE},
                                     hot_roots=["Native.via_helper"])
                if "via_helper" in f.message and f.rule == "HP001"]
    assert len(findings) == 1
    assert "per element" in findings[0].message


def test_cold_functions_never_fire(tmp_path):
    assert _rules(tmp_path, {"mod.py": _NATIVE},
                  hot_roots=["no_such_root"]) == set()


def test_hot_set_propagates_across_functions(tmp_path):
    # `encode` is only hot because `serve` (the root) reaches it; the
    # finding names the seeding root so triage starts from the entry
    # point, not the leaf.
    findings = _findings(tmp_path, {"app.py": """
        import pickle

        def encode(row):
            return pickle.dumps(row)

        def serve(rows):
            return [encode(row) for row in rows]
    """}, hot_roots=["serve"])
    assert [f.rule for f in findings] == ["HP010"]
    assert "hot via serve" in findings[0].message


def test_hp001_per_element_entry_point(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": _NATIVE},
                                     hot_roots=[],
                                     per_element_roots=["Native.one"])
                if f.rule == "HP001"]
    assert len(findings) == 1
    assert "per-element entry point" in findings[0].message
    assert "per prediction" in findings[0].message


# ---------------------------------------------------------------------------
# HP002 — accumulating whole-array allocation
# ---------------------------------------------------------------------------


def test_hp002_np_append_accumulator(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        import numpy as np

        def hot(parts):
            acc = np.zeros(0)
            for part in parts:
                acc = np.append(acc, part)
            return acc
    """}) if f.rule == "HP002"]
    assert len(findings) == 1
    assert "acc" in findings[0].message
    assert "every iteration" in findings[0].message


def test_hp002_list_rebuild_accumulator(tmp_path):
    assert "HP002" in _rules(tmp_path, {"mod.py": """
        def hot(rows):
            total = []
            for row in rows:
                total = total + [row * 2.0]
            return total
    """})


def test_hp002_collect_then_concatenate_is_clean(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        import numpy as np

        def hot(parts):
            collected = []
            for part in parts:
                collected.append(part)
            return np.concatenate(collected)
    """}) == set()


def test_hp002_seeded_pr4_histogram_mutation(tmp_path):
    # Reintroduce the pre-PR-4 shape: grow the gradient histogram by
    # whole-array concatenation once per feature instead of filling the
    # preallocated matrix — the O(rows x features) temporaries bug.
    source = _GROW_SOURCE.read_text()
    fill = ("            grad_hist[feature] = np.bincount(codes, weights=g,\n"
            "                                             minlength=n_bins)\n")
    assert fill in source
    mutated = source.replace(fill, (
        "            row = np.bincount(codes, weights=g,\n"
        "                              minlength=n_bins)\n"
        "            grad_hist = np.concatenate([grad_hist, row[None]])\n"))
    corpus = tmp_path / "trees"
    corpus.mkdir()
    (corpus / "grow.py").write_text(mutated)
    findings = [f for f in check_hotpath(roots=[tmp_path],
                                         hot_roots=["_build_histogram"],
                                         per_element_roots=[])
                if f.rule == "HP002"]
    assert len(findings) == 1
    assert "grad_hist" in findings[0].message


def test_real_histogram_source_is_hp002_clean(tmp_path):
    corpus = tmp_path / "trees"
    corpus.mkdir()
    (corpus / "grow.py").write_text(_GROW_SOURCE.read_text())
    assert [f for f in check_hotpath(roots=[tmp_path],
                                     hot_roots=["_build_histogram"],
                                     per_element_roots=[])
            if f.rule == "HP002"] == []


# ---------------------------------------------------------------------------
# HP003 — per-item submission across the process boundary
# ---------------------------------------------------------------------------


def test_hp003_per_item_submit(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        from concurrent.futures import ProcessPoolExecutor

        def hot(fn, tasks):
            with ProcessPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(fn, task) for task in tasks]
            return [future.result() for future in futures]
    """}) if f.rule == "HP003"]
    assert len(findings) == 1
    assert "pickle + IPC" in findings[0].message


def test_hp003_apply_async_on_multiprocessing_pool(tmp_path):
    assert "HP003" in _rules(tmp_path, {"mod.py": """
        from multiprocessing import Pool

        def hot(fn, tasks):
            pool = Pool(4)
            handles = [pool.apply_async(fn, (task,)) for task in tasks]
            return [handle.get() for handle in handles]
    """})


def test_hp003_pool_map_is_clean(tmp_path):
    assert "HP003" not in _rules(tmp_path, {"mod.py": """
        from concurrent.futures import ProcessPoolExecutor

        def hot(fn, tasks):
            with ProcessPoolExecutor(max_workers=4) as pool:
                return list(pool.map(fn, tasks, chunksize=64))
    """})


def test_hp003_seeded_per_row_process_map_variant(tmp_path):
    # The ROADMAP item 5 shape as a fixture: a process_map that submits
    # one future per task, paying pickle + IPC per row.
    findings = [f for f in _findings(tmp_path, {"parallel.py": """
        from concurrent.futures import ProcessPoolExecutor

        def process_map(fn, tasks, jobs):
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {pool.submit(fn, task): index
                           for index, task in enumerate(tasks)}
                ordered = sorted(futures, key=futures.get)
                return [future.result() for future in ordered]
    """}, hot_roots=["process_map"]) if f.rule == "HP003"]
    assert len(findings) == 1
    assert "process boundary" in findings[0].message


# ---------------------------------------------------------------------------
# HP004 — blocking while holding a lock
# ---------------------------------------------------------------------------


def test_hp004_sleep_while_holding_lock(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        import threading
        import time

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            def hot(self):
                with self._lock:
                    time.sleep(0.05)
    """}, hot_roots=["Store.hot"]) if f.rule == "HP004"]
    assert len(findings) == 1
    assert "self._lock" in findings[0].message


def test_hp004_blocking_effect_via_callee(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            def _flush(self, path, payload):
                path.write_text(payload)

            def hot(self, path, payload):
                with self._lock:
                    self._flush(path, payload)
    """}, hot_roots=["Store.hot"]) if f.rule == "HP004"]
    assert len(findings) == 1
    assert "outside the lock" in findings[0].message


def test_hp004_blocking_outside_lock_is_clean(tmp_path):
    assert "HP004" not in _rules(tmp_path, {"mod.py": """
        import threading
        import time

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            def hot(self):
                time.sleep(0.05)
                with self._lock:
                    self._count = 0
    """}, hot_roots=["Store.hot"])


# ---------------------------------------------------------------------------
# HP005 — loop-invariant pure calls
# ---------------------------------------------------------------------------


def test_hp005_invariant_len_in_loop(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        def hot(rows, bounds):
            out = []
            for row in rows:
                width = len(bounds)
                out.append(row * width)
            return out
    """}) if f.rule == "HP005"]
    assert len(findings) == 1
    assert "len()" in findings[0].message


def test_hp005_variant_argument_is_clean(tmp_path):
    assert "HP005" not in _rules(tmp_path, {"mod.py": """
        def hot(rows):
            out = []
            for row in rows:
                out.append(len(row))
            return out
    """})


def test_hp005_mutated_container_is_clean(tmp_path):
    # `len(seen)` looks invariant by rebinding alone, but `seen.add`
    # mutates it per iteration — the LRU-eviction false positive.
    assert "HP005" not in _rules(tmp_path, {"mod.py": """
        def hot(rows):
            seen = set()
            out = []
            for row in rows:
                seen.add(row)
                out.append(len(seen))
            return out
    """})


# ---------------------------------------------------------------------------
# HP006 — per-iteration label formatting / eager logging
# ---------------------------------------------------------------------------


def test_hp006_fully_invariant_fstring(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        class Renderer:
            def hot(self, rows):
                lines = []
                for row in rows:
                    header = f"model={self.name}"
                    lines.append(header + str(row))
                return lines
    """}, hot_roots=["Renderer.hot"]) if f.rule == "HP006"]
    assert len(findings) == 1
    assert "loop-invariant" in findings[0].message


def test_hp006_invariant_attribute_part(tmp_path):
    # The metric-label shape: `self.name` re-resolved and re-formatted
    # per sample even though only `row` varies.
    assert "HP006" in _rules(tmp_path, {"mod.py": """
        class Renderer:
            def hot(self, rows):
                return [f"{self.name}:{row}" for row in rows]
    """}, hot_roots=["Renderer.hot"])


def test_hp006_varying_local_parts_are_clean(tmp_path):
    assert "HP006" not in _rules(tmp_path, {"mod.py": """
        def hot(rows, prefix):
            return [f"{prefix}:{row}" for row in rows]
    """})


def test_hp006_failure_path_fstring_is_exempt(tmp_path):
    # Raise/assert messages only format on the failure path — leave
    # them readable.
    assert "HP006" not in _rules(tmp_path, {"mod.py": """
        class Renderer:
            def hot(self, rows):
                for row in rows:
                    if row < 0:
                        raise ValueError(f"negative row in {self.name}")
                return rows
    """}, hot_roots=["Renderer.hot"])


def test_hp006_eager_logging_format(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        def hot(logger, rows):
            logger.debug(f"predicting {len(rows)} rows")
            return rows
    """}) if f.rule == "HP006"]
    assert len(findings) == 1
    assert "%-style" in findings[0].message


def test_hp006_lazy_logging_is_clean(tmp_path):
    assert "HP006" not in _rules(tmp_path, {"mod.py": """
        def hot(logger, rows):
            logger.debug("predicting %d rows", len(rows))
            return rows
    """})


# ---------------------------------------------------------------------------
# HP007 — exception-as-control-flow
# ---------------------------------------------------------------------------


def test_hp007_try_except_as_lookup(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        def hot(rows, table):
            out = []
            for row in rows:
                try:
                    value = table[row]
                except KeyError:
                    value = 0
                out.append(value)
            return out
    """}) if f.rule == "HP007"]
    assert len(findings) == 1
    assert "KeyError" in findings[0].message


def test_hp007_substantive_handler_is_clean(tmp_path):
    assert "HP007" not in _rules(tmp_path, {"mod.py": """
        def hot(rows, table, rebuild):
            out = []
            for row in rows:
                try:
                    value = table[row]
                except KeyError:
                    value = rebuild(table, row)
                out.append(value)
            return out
    """})


# ---------------------------------------------------------------------------
# HP008 — list membership per iteration
# ---------------------------------------------------------------------------


def test_hp008_membership_against_list(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        def hot(rows, names):
            allowed = sorted(names)
            hits = 0
            for row in rows:
                if row in allowed:
                    hits += 1
            return hits
    """}) if f.rule == "HP008"]
    assert len(findings) == 1
    assert "allowed" in findings[0].message


def test_hp008_membership_against_set_is_clean(tmp_path):
    assert "HP008" not in _rules(tmp_path, {"mod.py": """
        def hot(rows, names):
            allowed = set(names)
            hits = 0
            for row in rows:
                if row in allowed:
                    hits += 1
            return hits
    """})


# ---------------------------------------------------------------------------
# HP009 — repeated attribute-chain resolution
# ---------------------------------------------------------------------------


def test_hp009_repeated_attribute_chain(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        class Scorer:
            def hot(self, rows):
                total = 0.0
                for row in rows:
                    total = total + self.model.bias.scale * row
                    total = total + self.model.bias.scale
                    total = total + self.model.bias.scale
                return total
    """}, hot_roots=["Scorer.hot"]) if f.rule == "HP009"]
    assert len(findings) == 1
    assert "self.model.bias.scale" in findings[0].message


def test_hp009_hoisted_chain_is_clean(tmp_path):
    assert "HP009" not in _rules(tmp_path, {"mod.py": """
        class Scorer:
            def hot(self, rows):
                scale = self.model.bias.scale
                total = 0.0
                for row in rows:
                    total = total + scale * row
                    total = total + scale
                    total = total + scale
                return total
    """}, hot_roots=["Scorer.hot"])


# ---------------------------------------------------------------------------
# HP010 — slow stdlib calls per element
# ---------------------------------------------------------------------------


def test_hp010_json_in_comprehension(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        import json

        def hot(rows):
            return [json.dumps(row) for row in rows]
    """}) if f.rule == "HP010"]
    assert len(findings) == 1
    assert "inside a loop" in findings[0].message


def test_hp010_re_compile_in_loop(tmp_path):
    assert "HP010" in _rules(tmp_path, {"mod.py": """
        import re

        def hot(lines, pattern):
            out = []
            for line in lines:
                matcher = re.compile(pattern)
                if matcher.match(line):
                    out.append(line)
            return out
    """})


def test_hp010_hoisted_compile_is_clean(tmp_path):
    assert "HP010" not in _rules(tmp_path, {"mod.py": """
        import re

        def hot(lines, pattern):
            matcher = re.compile(pattern)
            return [line for line in lines if matcher.match(line)]
    """})


# ---------------------------------------------------------------------------
# hot-root configuration
# ---------------------------------------------------------------------------


def test_load_hot_root_config_missing_file_uses_defaults(tmp_path):
    roots, per_element = load_hot_root_config(tmp_path / "absent.toml")
    assert roots == list(DEFAULT_HOT_ROOTS)
    assert per_element == list(DEFAULT_PER_ELEMENT_ROOTS)


def test_load_hot_root_config_reads_section(tmp_path):
    config = tmp_path / "checks_baseline.toml"
    config.write_text(
        '[hotpath]\n'
        'roots = ["Service.handle", "fan_out"]\n'
        'per_element_roots = ["Model.predict_one"]\n')
    roots, per_element = load_hot_root_config(config)
    assert roots == ["Service.handle", "fan_out"]
    assert per_element == ["Model.predict_one"]


def test_load_hot_root_config_rejects_non_array(tmp_path):
    config = tmp_path / "checks_baseline.toml"
    config.write_text('[hotpath]\nroots = "Service.handle"\n')
    with pytest.raises(CheckError, match="array of strings"):
        load_hot_root_config(config)


def test_config_path_drives_the_hot_set(tmp_path):
    config = tmp_path / "config.toml"
    config.write_text('[hotpath]\nroots = ["serve"]\n')
    (tmp_path / "app.py").write_text(textwrap.dedent("""
        import pickle

        def serve(rows):
            return [pickle.dumps(row) for row in rows]

        def cold(rows):
            return [pickle.dumps(row) for row in rows]
    """))
    findings = check_hotpath(roots=[tmp_path], config_path=config)
    assert [f.rule for f in findings] == ["HP010"]
    assert "hot via serve" in findings[0].message


# ---------------------------------------------------------------------------
# the real repo: exactly the one grandfathered roadmap debt
# ---------------------------------------------------------------------------


def test_repo_findings_are_exactly_the_roadmap_debts():
    # HP001 (per-prediction FFI in CompiledTreeModel.predict_one) was
    # retired by the batch-native codegen work: predict_one now routes
    # through a 1-row batch buffer. What remains is the lifecycle log's
    # intentional mid-frame fault site (HP004, baselined with a reason)
    # and the HP003 fan-out debt (ROADMAP item 5).
    findings = check_hotpath()
    assert [(f.rule, f.path) for f in findings] == [
        ("HP004", "src/repro/lifecycle/obslog.py"),
        ("HP003", "src/repro/parallel/executor.py"),
    ]
    assert all("hot via" in f.message for f in findings)
