"""Tests for the online serving stack: cache, batcher, registry, service."""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ModelNotFoundError,
    QueueFullError,
    RequestTimeoutError,
    SchemaError,
    ServingError,
)
from repro.core.model import T3Config, T3Model
from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.optimizer import Optimizer
from repro.engine.sqlparser import parse_sql
from repro.serving import (
    LRUCache,
    MetricsRegistry,
    MicroBatcher,
    ModelRegistry,
    PredictionService,
    ServingConfig,
    normalize_sql,
)
from repro.serving.telemetry import Counter, Gauge, Histogram
from repro.trees.boosting import BoostingParams


# ---------------------------------------------------------------------------
# Shared fixtures: one small trained model over the toy instance
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def toy_instance():
    from tests.conftest import build_toy_instance
    return build_toy_instance()


@pytest.fixture(scope="module")
def toy_model(toy_instance):
    from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
    workload = WorkloadBuilder(
        toy_instance, WorkloadConfig(queries_per_structure=2,
                                     include_fixed_benchmarks=False)).build()
    return T3Model.train(workload, T3Config(
        boosting=BoostingParams(n_rounds=15, objective="mape",
                                validation_fraction=0.2),
        compile_to_native=True))


@pytest.fixture()
def resolver(toy_instance):
    def resolve(name):
        if name == "toy":
            return toy_instance
        raise SchemaError(f"unknown instance {name!r}")
    return resolve


@pytest.fixture()
def service(toy_model, resolver):
    registry = ModelRegistry()
    registry.register(toy_model, "toy-model")
    svc = PredictionService(
        registry,
        ServingConfig(plan_cache_size=16, batch_wait_s=0.001),
        instance_resolver=resolver)
    yield svc
    # don't close(): the module-scoped model's compiled library is shared


SQL = "SELECT count(*) FROM orders WHERE o_total <= 500"


# ---------------------------------------------------------------------------
# normalize_sql
# ---------------------------------------------------------------------------


class TestNormalizeSQL:
    def test_collapses_whitespace_and_case(self):
        assert normalize_sql("SELECT  *\n\tFROM   t") == "select * from t"

    def test_strips_trailing_semicolon(self):
        assert normalize_sql("select 1 ;") == normalize_sql("SELECT 1")

    def test_preserves_string_literals(self):
        a = normalize_sql("SELECT * FROM t WHERE c LIKE 'A  B'")
        b = normalize_sql("select * from t where c like 'a  b'")
        assert "'A  B'" in a
        assert a != b

    def test_equivalent_queries_share_keys(self):
        assert (normalize_sql("SELECT count(*) FROM orders;")
                == normalize_sql("select   COUNT(*)\nFROM orders"))


# ---------------------------------------------------------------------------
# LRU cache
# ---------------------------------------------------------------------------


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_update_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0

    def test_eviction_callback(self):
        evicted = []
        cache = LRUCache(1, on_evict=lambda: evicted.append(1))
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(evicted) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(0)


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class TestTelemetry:
    def test_counter_monotonic(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_function(self):
        gauge = Gauge("g", function=lambda: 7)
        assert gauge.value == 7

    def test_histogram_buckets_and_quantile(self):
        histogram = Histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.005, 0.005, 0.05):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(0.0605)
        assert histogram.quantile(0.5) == 0.01
        rendered = "\n".join(histogram.render())
        assert 'h_bucket{le="0.001"} 1' in rendered
        assert 'h_bucket{le="+Inf"} 4' in rendered
        assert "h_count 4" in rendered

    def test_registry_renders_and_dedupes(self):
        metrics = MetricsRegistry()
        first = metrics.counter("x_total", "help me")
        second = metrics.counter("x_total")
        assert first is second
        first.inc()
        text = metrics.render()
        assert "# TYPE x_total counter" in text
        assert "x_total 1" in text

    def test_registry_rejects_kind_conflict(self):
        metrics = MetricsRegistry()
        metrics.counter("name")
        with pytest.raises(ConfigurationError):
            metrics.gauge("name")


# ---------------------------------------------------------------------------
# Micro-batcher
# ---------------------------------------------------------------------------


def _echo_sum(X):
    """Stand-in for predict_raw_batch: row sums."""
    return np.asarray(X).sum(axis=1)


class TestMicroBatcher:
    def test_single_request_round_trip(self):
        batcher = MicroBatcher(_echo_sum, max_wait_s=0.0).start()
        try:
            out = batcher.submit(np.array([[1.0, 2.0], [3.0, 4.0]]))
            assert out.tolist() == [3.0, 7.0]
        finally:
            batcher.close()

    def test_empty_batch_returns_immediately(self):
        batcher = MicroBatcher(_echo_sum)
        try:
            out = batcher.submit(np.empty((0, 5)))
            assert out.shape == (0,)
            assert batcher.stats().requests == 0  # never enqueued
        finally:
            batcher.close()

    def test_coalesces_concurrent_requests(self):
        calls = []

        def predict(X):
            calls.append(len(X))
            time.sleep(0.002)  # widen the window so requests pile up
            return _echo_sum(X)

        batcher = MicroBatcher(predict, max_wait_s=0.02).start()
        try:
            results = {}

            def client(i):
                results[i] = batcher.submit(
                    np.array([[float(i), 1.0]]), timeout=5.0)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for i in range(8):
                assert results[i].tolist() == [i + 1.0]
            stats = batcher.stats()
            assert stats.requests == 8
            assert stats.batches < 8          # at least one coalesced call
            assert stats.rows == 8
        finally:
            batcher.close()

    def test_queue_full_rejection(self):
        release = threading.Event()

        def blocked(X):
            release.wait(5.0)
            return _echo_sum(X)

        batcher = MicroBatcher(blocked, max_batch_rows=1,
                               queue_capacity=1).start()
        try:
            first = batcher.submit_async(np.array([[1.0]]))  # worker takes it
            time.sleep(0.05)
            second = batcher.submit_async(np.array([[2.0]]))  # fills queue
            with pytest.raises(QueueFullError):
                batcher.submit_async(np.array([[3.0]]))
            assert batcher.stats().rejected == 1
            release.set()
            assert first.result(5.0).tolist() == [1.0]
            assert second.result(5.0).tolist() == [2.0]
        finally:
            release.set()
            batcher.close()

    def test_request_timeout(self):
        release = threading.Event()

        def slow(X):
            release.wait(5.0)
            return _echo_sum(X)

        batcher = MicroBatcher(slow, max_batch_rows=1).start()
        try:
            with pytest.raises(RequestTimeoutError):
                batcher.submit(np.array([[1.0]]), timeout=0.05)
            assert batcher.stats().timeouts == 1
        finally:
            release.set()
            batcher.close()

    def test_expired_request_gets_timeout_not_stale_result(self):
        release = threading.Event()

        def blocked(X):
            release.wait(5.0)
            return _echo_sum(X)

        batcher = MicroBatcher(blocked, max_batch_rows=1,
                               queue_capacity=4).start()
        try:
            batcher.submit_async(np.array([[1.0]]))   # occupies the worker
            time.sleep(0.05)
            expired = batcher.submit_async(np.array([[2.0]]), timeout=0.01)
            time.sleep(0.05)                          # deadline passes queued
            release.set()
            with pytest.raises(RequestTimeoutError):
                expired.result(5.0)
        finally:
            release.set()
            batcher.close()

    def test_predict_error_propagates(self):
        def broken(X):
            raise RuntimeError("boom")

        batcher = MicroBatcher(broken, max_wait_s=0.0).start()
        try:
            with pytest.raises(RuntimeError, match="boom"):
                batcher.submit(np.array([[1.0]]), timeout=5.0)
        finally:
            batcher.close()

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(_echo_sum).start()
        batcher.close()
        with pytest.raises(ServingError):
            batcher.submit(np.array([[1.0]]))


# ---------------------------------------------------------------------------
# Model registry
# ---------------------------------------------------------------------------


class TestModelRegistry:
    def test_register_versions_increment(self, toy_model):
        registry = ModelRegistry()
        first = registry.register(toy_model, "m")
        second = registry.register(toy_model, "m")
        assert (first.version, second.version) == (1, 2)
        assert registry.get("m").version == 2           # newest wins
        assert registry.get("m", version=1) is first

    def test_single_model_is_default(self, toy_model):
        registry = ModelRegistry()
        registry.register(toy_model, "only")
        assert registry.get().name == "only"

    def test_unknown_model_and_version(self, toy_model):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFoundError):
            registry.get("nope")
        registry.register(toy_model, "m")
        with pytest.raises(ModelNotFoundError):
            registry.get("m", version=9)

    def test_load_save_round_trip(self, toy_model, tmp_path):
        path = tmp_path / "model.json"
        toy_model.save(path)
        registry = ModelRegistry()
        entry = registry.load(path, name="loaded")
        assert entry.source == str(path)
        assert entry.n_features == toy_model.booster.n_features

    def test_fallback_when_no_compiler(self, toy_model, tmp_path,
                                       monkeypatch):
        import repro.serving.registry as registry_module
        monkeypatch.setattr(registry_module, "find_c_compiler", lambda: None)
        path = tmp_path / "model.json"
        toy_model.save(path)
        registry = ModelRegistry()
        entry = registry.load(path)
        assert entry.backend == "interpreted"
        assert "no C compiler" in entry.fallback_reason
        # and it still predicts
        probe = np.zeros((2, entry.n_features))
        assert entry.model.predict_raw_batch(probe).shape == (2,)

    def test_compile_disabled(self, toy_model, tmp_path):
        path = tmp_path / "model.json"
        toy_model.save(path)
        registry = ModelRegistry(compile_native=False)
        entry = registry.load(path)
        assert entry.backend == "interpreted"
        assert "disabled" in entry.fallback_reason

    def test_load_is_idempotent_per_artifact(self, toy_model, tmp_path):
        """Re-loading the same file must not stack duplicate versions
        (each re-registration would warm-compile from scratch)."""
        path = tmp_path / "model.json"
        toy_model.save(path)
        registry = ModelRegistry(compile_native=False)
        first = registry.load(path, name="m")
        assert registry.load(path, name="m") is first
        assert len(registry) == 1
        # Different bytes under the same name do get a new version.
        path.write_text(path.read_text() + "\n")
        second = registry.load(path, name="m")
        assert second.version == 2
        assert second.content_digest != first.content_digest


# ---------------------------------------------------------------------------
# The prediction service
# ---------------------------------------------------------------------------


class TestPredictionService:
    def test_predict_matches_offline_model(self, service, toy_model,
                                           toy_instance):
        result = service.predict(SQL, "toy")
        logical = parse_sql(SQL, toy_instance.schema, toy_instance.catalog)
        plan = Optimizer(toy_instance.schema,
                         toy_instance.catalog).optimize(logical, "q")
        expected = toy_model.predict_query(
            plan, ExactCardinalityModel(toy_instance.catalog))
        assert result.predicted_seconds == pytest.approx(expected, rel=1e-9)
        assert result.predicted_seconds == pytest.approx(
            sum(result.pipeline_seconds), rel=1e-9)

    def test_cache_hit_skips_parse_and_featurize(self, service):
        cold = service.predict(SQL, "toy")
        warm = service.predict("select   count(*) from orders "
                               "where o_total <= 500 ;", "toy")
        assert not cold.cache_hit and warm.cache_hit
        assert cold.parse_seconds > 0 and cold.featurize_seconds > 0
        assert warm.parse_seconds == 0 and warm.featurize_seconds == 0
        assert warm.predicted_seconds == pytest.approx(
            cold.predicted_seconds, rel=1e-12)

    def test_cache_eviction_under_pressure(self, toy_model, resolver):
        registry = ModelRegistry()
        registry.register(toy_model, "m")
        service = PredictionService(
            registry, ServingConfig(plan_cache_size=1, batch_wait_s=0.0),
            instance_resolver=resolver)
        service.predict(SQL, "toy")
        service.predict("SELECT count(*) FROM customer", "toy")  # evicts
        again = service.predict(SQL, "toy")
        assert not again.cache_hit
        assert service.cache_stats().evictions >= 1

    def test_unknown_instance_raises_and_counts(self, service):
        errors_before = service.metrics.get(
            "t3_serving_errors_total").value
        with pytest.raises(SchemaError):
            service.predict(SQL, "missing")
        assert service.metrics.get(
            "t3_serving_errors_total").value == errors_before + 1

    def test_unknown_model_raises(self, service):
        with pytest.raises(ModelNotFoundError):
            service.predict(SQL, "toy", model="absent")

    def test_metrics_populated_after_traffic(self, service):
        for _ in range(3):
            service.predict(SQL, "toy")
        text = service.metrics_text()
        assert "t3_serving_requests_total" in text
        assert "t3_serving_cache_hits_total" in text
        assert "t3_serving_queue_depth" in text
        assert "t3_serving_infer_seconds_count" in text
        requests = service.metrics.get("t3_serving_requests_total")
        assert requests.value >= 3
        infer = service.metrics.get("t3_serving_infer_seconds")
        assert infer.sum > 0

    def test_health_payload(self, service):
        service.predict(SQL, "toy")
        health = service.health()
        assert health["status"] == "ok"
        assert health["models"][0]["name"] == "toy-model"
        assert health["plan_cache"]["capacity"] == 16

    def test_closed_service_rejects(self, toy_model, resolver):
        registry = ModelRegistry()
        registry.register(toy_model, "m")
        service = PredictionService(registry, instance_resolver=resolver)
        # close only the batchers, keep the shared model library alive
        service._closed.set()
        with pytest.raises(ServingError):
            service.predict(SQL, "toy")

    def test_predict_many_matches_individual(self, service):
        requests = [(SQL, "toy"),
                    ("SELECT count(*) FROM customer", "toy"),
                    ("SELECT count(*) FROM item WHERE i_price <= 50",
                     "toy")]
        batched = service.predict_many(requests)
        assert len(batched) == 3
        for (sql, instance), result in zip(requests, batched):
            single = service.predict(sql, instance)
            assert result.predicted_seconds == pytest.approx(
                single.predicted_seconds, rel=1e-9)

    def test_predict_many_empty(self, service):
        assert service.predict_many([]) == []

    def test_predict_many_single_native_call(self, service):
        for sql in (SQL, "SELECT count(*) FROM customer"):
            service.predict(sql, "toy")  # warm the plan cache
        batches_before = service.metrics.get(
            "t3_serving_batches_total").value
        results = service.predict_many(
            [(SQL, "toy"), ("SELECT count(*) FROM customer", "toy")] * 4)
        assert len(results) == 8
        assert all(r.cache_hit for r in results)
        assert service.metrics.get(
            "t3_serving_batches_total").value == batches_before + 1

    def test_concurrent_requests_coalesce(self, toy_model, resolver):
        registry = ModelRegistry()
        registry.register(toy_model, "m")
        service = PredictionService(
            registry, ServingConfig(batch_wait_s=0.02),
            instance_resolver=resolver)
        service.predict(SQL, "toy")  # warm the plan cache
        results = []

        def client():
            results.append(service.predict(SQL, "toy", timeout=5.0))

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert all(r.cache_hit for r in results)
        batches = service.metrics.get("t3_serving_batches_total").value
        # 1 warmup batch + coalesced concurrent batches: fewer than 1 + 8
        assert batches < 9
