"""Tests for the experiment harness: cache, context, reporting."""

import numpy as np
import pytest

from repro.experiments.cache import DiskCache
from repro.experiments.context import ExperimentContext, ExperimentScale
from repro.experiments.reporting import format_seconds, print_series, print_table


class TestDiskCache:
    def test_build_once(self, tmp_path):
        cache = DiskCache(tmp_path)
        calls = []

        def build():
            calls.append(1)
            return {"answer": 42}

        assert cache.get_or_build("k", build) == {"answer": 42}
        assert cache.get_or_build("k", build) == {"answer": 42}
        assert len(calls) == 1

    def test_disabled_cache_always_builds(self, tmp_path):
        cache = DiskCache(tmp_path, enabled=False)
        calls = []
        cache.get_or_build("k", lambda: calls.append(1))
        cache.get_or_build("k", lambda: calls.append(1))
        assert len(calls) == 2

    def test_invalidate(self, tmp_path):
        cache = DiskCache(tmp_path)
        calls = []
        cache.get_or_build("k", lambda: calls.append(1) or 1)
        cache.invalidate("k")
        cache.get_or_build("k", lambda: calls.append(1) or 1)
        assert len(calls) == 2

    def test_corrupt_entry_rebuilt(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_build("k", lambda: 1)
        path = cache._path("k")
        path.write_bytes(b"garbage")
        assert cache.get_or_build("k", lambda: 2) == 2

    def test_corrupt_entry_quarantined_not_deleted(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_build("k", lambda: 1)
        path = cache._path("k")
        path.write_bytes(b"truncated pickle")
        cache.get_or_build("k", lambda: 2)
        quarantined = list(tmp_path.glob("*.corrupt-*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == b"truncated pickle"
        # The rebuilt entry is valid and served on the next read.
        assert cache.get_or_build("k", lambda: 3) == 2

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_build("k", lambda: {"big": list(range(1000))})
        assert not list(tmp_path.glob("*.tmp"))

    def test_clear_removes_quarantined_and_temp_files(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_build("k", lambda: 1)
        cache._path("k").write_bytes(b"garbage")
        cache.get_or_build("k", lambda: 2)
        cache.clear()
        assert not list(tmp_path.iterdir())

    def test_key_sanitization(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get_or_build("weird/key with spaces", lambda: 3) == 3

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        calls = []
        cache.get_or_build("a", lambda: calls.append(1) or 1)
        assert calls


class TestContext:
    @pytest.fixture(scope="class")
    def context(self, tmp_path_factory):
        cache = DiskCache(tmp_path_factory.mktemp("cache"))
        return ExperimentContext(ExperimentScale.smoke(), cache=cache)

    def test_split_is_clean(self, context):
        train_families = {q.family for q in context.train_queries()}
        test_families = {q.family for q in context.test_queries()}
        assert "tpcds" not in train_families
        assert test_families == {"tpcds"}

    def test_workload_covers_all_instances(self, context):
        instances = {q.instance_name for q in context.workload()}
        assert len(instances) == 21

    def test_job_benchmark_queries(self, context):
        job = context.job_benchmark_queries()
        assert len(job) == 113

    def test_families(self, context):
        assert len(context.families()) == 17

    def test_exclude_family(self, context):
        remaining = context.queries_excluding_family("imdb")
        assert all(q.family != "imdb" for q in remaining)


class TestReporting:
    def test_format_seconds(self):
        assert format_seconds(3e-9).endswith("ns")
        assert format_seconds(5e-6).endswith("us")
        assert format_seconds(2e-3).endswith("ms")
        assert format_seconds(1.5).endswith("s")

    def test_print_table(self, capsys):
        print_table("Title", ["a", "b"], [[1, 2], ["xx", "yy"]], note="n")
        out = capsys.readouterr().out
        assert "Title" in out and "xx" in out and "note: n" in out

    def test_print_series(self, capsys):
        print_series("S", "x", {"y": [1.0, 2.0]}, [10, 20])
        out = capsys.readouterr().out
        assert "10" in out and "2" in out
