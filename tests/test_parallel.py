"""Tests for the parallel pipeline: jobs knob, chunking, determinism,
and the cache's exactly-one-build guarantee under process races."""

import multiprocessing
import time

import numpy as np
import pytest

from repro.core.dataset import build_dataset
from repro.errors import ConfigurationError
from repro.experiments.cache import DiskCache, fingerprint
from repro.datagen.workload import WorkloadConfig, build_corpus_workload
from repro.parallel import (
    REPRO_JOBS_ENV,
    build_corpus_workload_parallel,
    iter_workload_chunks,
    process_map,
    resolve_jobs,
)


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(REPRO_JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(REPRO_JOBS_ENV, "5")
        assert resolve_jobs() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(REPRO_JOBS_ENV, raising=False)
        import os
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(REPRO_JOBS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs()

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)


def _double(x):
    return 2 * x


class TestProcessMap:
    def test_preserves_order(self):
        assert process_map(_double, range(20), jobs=4) == \
            [2 * i for i in range(20)]

    def test_serial_path(self):
        assert process_map(_double, [3], jobs=8) == [6]
        assert process_map(_double, [1, 2], jobs=1) == [2, 4]


class TestChunking:
    def test_chunks_cover_every_index_once_in_order(self):
        config = WorkloadConfig(queries_per_structure=10,
                                include_fixed_benchmarks=False)
        chunks = list(iter_workload_chunks(["financial"], config,
                                           chunk_size=3))
        per_structure = {}
        for chunk in chunks:
            per_structure.setdefault(chunk.structure_name, []).extend(
                chunk.indices)
        for indices in per_structure.values():
            assert indices == list(range(10))

    def test_fixed_suite_chunk_toggled_by_config(self):
        with_fixed = WorkloadConfig(queries_per_structure=2)
        without = WorkloadConfig(queries_per_structure=2,
                                 include_fixed_benchmarks=False)
        fixed_chunks = [c for c in iter_workload_chunks(
            ["tpch_sf1"], with_fixed) if c.structure_name is None]
        assert len(fixed_chunks) == 1
        assert not [c for c in iter_workload_chunks(
            ["tpch_sf1"], without) if c.structure_name is None]


class TestParallelDeterminism:
    """ISSUE 4's core guarantee: parallel build == serial build, bitwise."""

    CONFIG = WorkloadConfig(queries_per_structure=2)
    NAMES = ["financial", "tpch_sf1"]

    @pytest.fixture(scope="class")
    def serial(self):
        return build_corpus_workload(self.NAMES, self.CONFIG)

    @pytest.fixture(scope="class")
    def parallel(self):
        return build_corpus_workload_parallel(self.NAMES, self.CONFIG,
                                              jobs=4, chunk_size=1)

    def test_same_queries_same_order(self, serial, parallel):
        assert [q.name for q in serial] == [q.name for q in parallel]
        assert [q.group for q in serial] == [q.group for q in parallel]

    def test_same_simulated_times(self, serial, parallel):
        assert [q.median_time for q in serial] == \
            [q.median_time for q in parallel]
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.pipeline_targets(), b.pipeline_targets())

    def test_catalogs_reattached_to_shared_objects(self, serial, parallel):
        for a, b in zip(serial, parallel):
            assert b.catalog is a.catalog

    def test_datasets_bit_identical(self, serial, parallel):
        ds_a = build_dataset(serial)
        ds_b = build_dataset(parallel)
        assert np.array_equal(ds_a.X, ds_b.X)
        assert np.array_equal(ds_a.y, ds_b.y)
        assert np.array_equal(ds_a.input_cards, ds_b.input_cards)
        assert np.array_equal(ds_a.query_index, ds_b.query_index)

    def test_jobs_one_delegates_to_serial(self, serial):
        built = build_corpus_workload_parallel(self.NAMES, self.CONFIG,
                                               jobs=1)
        assert [q.name for q in built] == [q.name for q in serial]


def _stampede_worker(cache_dir, token_dir, barrier):
    cache = DiskCache(cache_dir)

    def build():
        token = token_dir / f"build-{multiprocessing.current_process().pid}"
        token.write_text("built")
        time.sleep(0.2)  # widen the window a lost race would exploit
        return "artifact"

    barrier.wait()
    assert cache.get_or_build("hot-key", build) == "artifact"


class TestCacheStampede:
    def test_concurrent_processes_build_exactly_once(self, tmp_path):
        cache_dir = tmp_path / "cache"
        token_dir = tmp_path / "tokens"
        token_dir.mkdir()
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        procs = [ctx.Process(target=_stampede_worker,
                             args=(cache_dir, token_dir, barrier))
                 for _ in range(4)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        assert len(list(token_dir.iterdir())) == 1
        assert not list(cache_dir.glob("*.tmp"))
        assert not list(cache_dir.glob("*.corrupt-*"))
        assert DiskCache(cache_dir).get_or_build(
            "hot-key", lambda: "rebuilt") == "artifact"


class TestFingerprint:
    def test_equal_configs_fingerprint_identically(self):
        a = WorkloadConfig(queries_per_structure=6)
        b = WorkloadConfig(queries_per_structure=6)
        assert fingerprint(a) == fingerprint(b)

    def test_any_field_change_rekeys(self):
        base = WorkloadConfig(queries_per_structure=6)
        assert fingerprint(base) != \
            fingerprint(WorkloadConfig(queries_per_structure=7))
        assert fingerprint(base) != \
            fingerprint(WorkloadConfig(queries_per_structure=6, seed=1))

    def test_argument_boundaries_matter(self):
        assert fingerprint("ab", "c") != fingerprint("a", "bc")

    def test_dict_key_order_is_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
