"""Tests for deterministic seed derivation."""

from repro.rng import DEFAULT_SEED, derive_rng, derive_seed, make_rng


def test_same_labels_same_seed():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_different_labels_different_seed():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_label_order_matters():
    assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


def test_derive_rng_reproducible():
    a = derive_rng(5, "x").integers(0, 1 << 30, size=4)
    b = derive_rng(5, "x").integers(0, 1 << 30, size=4)
    assert (a == b).all()


def test_make_rng_uses_default_seed():
    a = make_rng().integers(0, 1 << 30)
    b = make_rng(DEFAULT_SEED).integers(0, 1 << 30)
    assert a == b


def test_labels_concatenation_is_unambiguous():
    # ("ab", "c") must differ from ("a", "bc").
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
