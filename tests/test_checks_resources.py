"""Resource-lifecycle analyzer (RS rules): planted defects and clean twins.

The seeded-mutation test reintroduces the PR 5 probe-slot leak by
stripping the ``record_aborted()`` repayment from the *real*
``serving/service.py`` source and asserting RS006 flags the mutated
corpus while the shipped source stays clean — the analyzer guards the
actual code shape, not a toy reduction of it.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.checks.resources import check_resource_lifecycles

_SERVICE_SOURCE = (
    Path(__file__).resolve().parents[1]
    / "src" / "repro" / "serving" / "service.py")


def _findings(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return check_resource_lifecycles(roots=[tmp_path])


def _rules(tmp_path, files):
    return {f.rule for f in _findings(tmp_path, files)}


# ---------------------------------------------------------------------------
# RS001/RS002 — manual lock discipline
# ---------------------------------------------------------------------------


def test_rs001_lock_held_at_exit(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        class Guard:
            def bad(self, flag):
                self._lock.acquire()
                if flag:
                    return None
                self._lock.release()
    """}) if f.rule == "RS001"]
    assert len(findings) == 1
    assert "self._lock" in findings[0].message


def test_rs002_release_only_on_normal_path(tmp_path):
    assert "RS002" in _rules(tmp_path, {"mod.py": """
        class Guard:
            def risky(self, work):
                self._lock.acquire()
                work()
                self._lock.release()
    """})


def test_lock_try_finally_is_clean(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        class Guard:
            def good(self, work):
                self._lock.acquire()
                try:
                    work()
                finally:
                    self._lock.release()
    """}) == set()


# ---------------------------------------------------------------------------
# RS003/RS004/RS007/RS008 — handle lifecycles
# ---------------------------------------------------------------------------


def test_rs003_file_leaked_on_early_return(tmp_path):
    assert "RS003" in _rules(tmp_path, {"mod.py": """
        def head(path, flag):
            handle = open(path)
            if flag:
                return None
            handle.close()
    """})


def test_rs003_with_statement_is_clean(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        def head(path, probe):
            with open(path) as handle:
                if probe(handle):
                    return None
    """}) == set()


def test_rs003_return_transfers_ownership(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        def acquire(path):
            handle = open(path)
            return handle
    """}) == set()


def test_rs004_pool_not_shut_down(tmp_path):
    assert "RS004" in _rules(tmp_path, {"mod.py": """
        from concurrent.futures import ThreadPoolExecutor

        def run(tasks, check):
            pool = ThreadPoolExecutor(4)
            if not check(tasks):
                return []
            results = [pool.submit(t) for t in tasks]
            pool.shutdown()
            return results
    """})


def test_rs004_attribute_assignment_transfers_ownership(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        from concurrent.futures import ThreadPoolExecutor

        class Runner:
            def __init__(self):
                pool = ThreadPoolExecutor(4)
                self._pool = pool
    """}) == set()


def test_rs008_tempdir_leaked_on_exception_path(tmp_path):
    # The PR 5 compile_model shape: mkdtemp, fallible work that never
    # touches the directory variable, cleanup only on the happy path —
    # a raise in between leaks the directory.
    assert "RS008" in _rules(tmp_path, {"mod.py": """
        import shutil
        import tempfile

        def build(source_path, data):
            workdir = tempfile.mkdtemp()
            source_path.write_text(data)
            shutil.rmtree(workdir)
            return data
    """})


def test_rs008_cleanup_in_except_is_clean(tmp_path):
    assert _rules(tmp_path, {"mod.py": """
        import shutil
        import tempfile

        def build(write):
            workdir = tempfile.mkdtemp()
            try:
                write(workdir)
                artifact = load(workdir)
            except BaseException:
                shutil.rmtree(workdir, ignore_errors=True)
                raise
            return artifact, workdir
    """}) == set()


# ---------------------------------------------------------------------------
# RS005 — unguarded resolution of shared futures
# ---------------------------------------------------------------------------


def test_rs005_shared_future_unguarded(tmp_path):
    findings = [f for f in _findings(tmp_path, {"mod.py": """
        class Batcher:
            def flush(self, request, value):
                request.future.set_result(value)
    """}) if f.rule == "RS005"]
    assert len(findings) == 1
    assert "InvalidStateError" in findings[0].message


def test_rs005_guarded_resolution_is_clean(tmp_path):
    assert "RS005" not in _rules(tmp_path, {"mod.py": """
        class Batcher:
            def flush(self, request, value):
                try:
                    request.future.set_result(value)
                except Exception:
                    pass
    """})


def test_rs005_locally_created_future_is_clean(tmp_path):
    assert "RS005" not in _rules(tmp_path, {"mod.py": """
        from concurrent.futures import Future

        def completed(value):
            future = Future()
            future.set_result(value)
            return future
    """})


# ---------------------------------------------------------------------------
# RS006 — breaker probe slots (the PR 5 leak, as a rule)
# ---------------------------------------------------------------------------


def test_rs006_probe_slot_not_repaid_on_raise_path(tmp_path):
    assert "RS006" in _rules(tmp_path, {"mod.py": """
        class Service:
            def infer(self, breaker, submit):
                if breaker.allow():
                    try:
                        return submit()
                    except Exception:
                        pass
                return None
    """})


def test_rs006_every_path_repaid_is_clean(tmp_path):
    assert "RS006" not in _rules(tmp_path, {"mod.py": """
        class Service:
            def infer(self, breaker, submit):
                if breaker.allow():
                    try:
                        result = submit()
                    except Exception:
                        breaker.record_failure()
                    else:
                        breaker.record_success()
                        return result
                return None
    """})


def test_rs006_seeded_pr5_mutation_in_real_service_source(tmp_path):
    # Strip the record_aborted() repayment from the real service.py:
    # the shed-path re-raise then leaks the half-open probe slot —
    # exactly the PR 5 bug before review caught it.
    source = _SERVICE_SOURCE.read_text()
    assert "breaker.record_aborted()" in source
    mutated = "\n".join(
        line for line in source.splitlines()
        if "breaker.record_aborted()" not in line)
    corpus = tmp_path / "serving"
    corpus.mkdir()
    (corpus / "service.py").write_text(mutated)
    findings = [f for f in check_resource_lifecycles(roots=[tmp_path])
                if f.rule == "RS006"]
    assert len(findings) == 1
    assert "probe slot" in findings[0].message


def test_real_service_source_is_rs006_clean(tmp_path):
    corpus = tmp_path / "serving"
    corpus.mkdir()
    (corpus / "service.py").write_text(_SERVICE_SOURCE.read_text())
    assert [f for f in check_resource_lifecycles(roots=[tmp_path])
            if f.rule == "RS006"] == []


# ---------------------------------------------------------------------------
# the real repo is clean
# ---------------------------------------------------------------------------


def test_repo_has_no_resource_findings():
    assert check_resource_lifecycles() == []
