"""Shared fixtures: a small hand-built instance and tiny workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.types import DataType
from repro.engine.schema import Column, DatabaseSchema, JoinEdge, TableSchema
from repro.engine.catalog import Catalog
from repro.engine.distributions import UniformInt, ZipfInt, uniform_categorical
from repro.datagen.instances import Instance
from repro.datagen.workload import WorkloadBuilder, WorkloadConfig


def build_toy_instance(n_orders: int = 50_000, n_customers: int = 5_000,
                       n_items: int = 3_000, seed: int = 7) -> Instance:
    """A small orders/customer/item star schema used across tests."""
    orders = TableSchema("orders", [
        Column("o_id", DataType.BIGINT),
        Column("o_cust", DataType.BIGINT),
        Column("o_item", DataType.BIGINT),
        Column("o_total", DataType.DECIMAL),
        Column("o_date", DataType.DATE),
        Column("o_status", DataType.CHAR),
    ], primary_key="o_id")
    customer = TableSchema("customer", [
        Column("c_id", DataType.BIGINT),
        Column("c_nation", DataType.INT),
        Column("c_balance", DataType.DECIMAL),
        Column("c_name", DataType.VARCHAR),
    ], primary_key="c_id")
    item = TableSchema("item", [
        Column("i_id", DataType.BIGINT),
        Column("i_price", DataType.DECIMAL),
        Column("i_category", DataType.CHAR),
    ], primary_key="i_id")
    schema = DatabaseSchema("toy", [orders, customer, item], [
        JoinEdge("orders", "o_cust", "customer", "c_id"),
        JoinEdge("orders", "o_item", "item", "i_id"),
    ])
    catalog = Catalog(schema, seed=seed)
    catalog.set_table_stats("orders", n_orders)
    catalog.set_table_stats("customer", n_customers)
    catalog.set_table_stats("item", n_items)
    catalog.set_column_distribution("orders", "o_id", UniformInt(1, n_orders))
    catalog.set_column_distribution("orders", "o_cust", UniformInt(1, n_customers))
    catalog.set_column_distribution("orders", "o_item", UniformInt(1, n_items))
    catalog.set_column_distribution("orders", "o_total", UniformInt(1, 10_000))
    catalog.set_column_distribution("orders", "o_date", UniformInt(8000, 10_000))
    catalog.set_column_distribution("orders", "o_status", uniform_categorical(4))
    catalog.set_column_distribution("customer", "c_id", UniformInt(1, n_customers))
    catalog.set_column_distribution("customer", "c_nation", ZipfInt(0, 25, 0.8))
    catalog.set_column_distribution("customer", "c_balance",
                                    UniformInt(-999, 9_999))
    catalog.set_column_distribution("customer", "c_name",
                                    uniform_categorical(n_customers))
    catalog.set_column_distribution("item", "i_id", UniformInt(1, n_items))
    catalog.set_column_distribution("item", "i_price", UniformInt(1, 500))
    catalog.set_column_distribution("item", "i_category",
                                    uniform_categorical(12))
    catalog.validate_complete()
    return Instance("toy", "toy", schema, catalog)


@pytest.fixture(scope="session")
def toy_instance() -> Instance:
    return build_toy_instance()


@pytest.fixture(scope="session")
def toy_workload(toy_instance) -> list:
    """A small benchmarked workload over the toy instance."""
    config = WorkloadConfig(queries_per_structure=3,
                            include_fixed_benchmarks=False)
    return WorkloadBuilder(toy_instance, config).build()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
