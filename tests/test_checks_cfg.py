"""CFG builder golden tests plus dataflow-solver behaviour.

The golden strings pin the exact block/edge structure for the shapes
the concurrency analyzer depends on: try/finally release patterns,
nested ``with``, early return inside ``with`` (the case the old lexical
checker could not see), and loop back-edges. ``describe()`` is the
stable rendering contract — if the builder changes shape, these tests
say exactly where.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.checks.cfg import (
    CFG,
    WithEnter,
    WithExit,
    build_cfg,
    forward_dataflow,
)
from repro.errors import CheckError


def _cfg(source):
    func = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(func)


# ---------------------------------------------------------------------------
# golden structure
# ---------------------------------------------------------------------------

def test_golden_try_finally():
    cfg = _cfg('''
        def f(self):
            self._lock.acquire()
            try:
                self._count += 1
                return self._count
            finally:
                self._lock.release()
        ''')
    assert cfg.describe() == "\n".join([
        "B0(entry) lines[3] -> [B3]",
        "B1(exit) lines[] -> []",
        "B2(finally) lines[8] -> [B1]",
        "B3(try) lines[5,6] -> [B2]",
    ])


def test_golden_nested_with():
    cfg = _cfg('''
        def f(self):
            with self._a:
                with self._b:
                    self._x = 1
                self._y = 2
        ''')
    assert cfg.describe() == "\n".join([
        "B0(entry) lines[3,4,5] -> [B2]",
        "B1(exit) lines[] -> []",
        "B2(with-exit) lines[4,6] -> [B3]",
        "B3(with-exit) lines[3] -> [B1]",
    ])
    # The inner with releases (B2) strictly before the outer one (B3).
    exits = [e for b in cfg.blocks for e in b.events
             if isinstance(e, WithExit)]
    assert [e.line for e in exits] == [4, 3]


def test_golden_early_return_inside_with():
    cfg = _cfg('''
        def f(self):
            with self._lock:
                if self._closed:
                    return None
                self._hits += 1
            return self._hits
        ''')
    assert cfg.describe() == "\n".join([
        "B0(entry) lines[3,4] -> [B2,B4]",
        "B1(exit) lines[] -> []",
        "B2(then) lines[5] -> [B3]",
        "B3(with-exit) lines[3] -> [B1]",
        "B4(after-if) lines[6] -> [B5]",
        "B5(with-exit) lines[3,7] -> [B1]",
    ])
    # Both the early return (via B3) and the normal path (via B5) pass
    # through a WithExit before reaching the exit block.
    for pred in cfg.predecessors(CFG.EXIT):
        assert any(isinstance(e, WithExit)
                   for e in cfg.blocks[pred].events)


def test_golden_loop_back_edge_and_break():
    cfg = _cfg('''
        def f(self):
            total = 0
            while self._more:
                total += self._step
                if total > 10:
                    break
            return total
        ''')
    assert cfg.describe() == "\n".join([
        "B0(entry) lines[3] -> [B2]",
        "B1(exit) lines[] -> []",
        "B2(loop-head) lines[4] -> [B4,B3]",
        "B3(after-loop) lines[8] -> [B1]",
        "B4(loop-body) lines[5,6] -> [B5,B6]",
        "B5(then) lines[] -> [B3]",
        "B6(after-if) lines[] -> [B2]",
    ])
    assert (2, 4) in cfg.edges()      # head -> body
    assert (6, 2) in cfg.edges()      # the back edge
    assert (5, 3) in cfg.edges()      # break jumps straight to after-loop


def test_with_enter_events_carry_items():
    cfg = _cfg('''
        def f(self):
            with self._lock:
                pass
        ''')
    enters = [e for b in cfg.blocks for e in b.events
              if isinstance(e, WithEnter)]
    assert len(enters) == 1
    assert isinstance(enters[0].item, ast.withitem)
    assert enters[0].line == 3


def test_exception_edge_reaches_handler():
    cfg = _cfg('''
        def f(self):
            try:
                self._risky()
            except ValueError:
                self._count = 0
            return self._count
        ''')
    try_block = cfg.block_of_line(4)
    handler = cfg.block_of_line(5)
    assert handler.index in try_block.successors


def test_raise_without_handlers_routes_to_exit_via_with_exit():
    cfg = _cfg('''
        def f(self):
            with self._lock:
                raise RuntimeError("boom")
        ''')
    raising = cfg.block_of_line(4)
    (succ,) = raising.successors
    assert any(isinstance(e, WithExit) for e in cfg.blocks[succ].events)
    assert CFG.EXIT in cfg.blocks[succ].successors


def test_break_outside_loop_is_typed_error():
    tree = ast.parse("def f():\n    pass")
    func = tree.body[0]
    func.body = [ast.Break(lineno=2, col_offset=4)]
    with pytest.raises(CheckError):
        build_cfg(func)


def test_lambda_is_wrapped():
    lam = ast.parse("g = lambda x: x + 1").body[0].value
    cfg = build_cfg(lam)
    assert cfg.name == "<lambda>"
    assert CFG.EXIT in cfg.blocks[CFG.ENTRY].successors


# ---------------------------------------------------------------------------
# dataflow solver
# ---------------------------------------------------------------------------

def _lock_transfer(state, event):
    """Toy transfer: track which with-items are open, by line."""
    if isinstance(event, WithEnter):
        return state | {str(event.line)}
    if isinstance(event, WithExit):
        return state - {str(event.line)}
    return state


def test_must_analysis_drops_lock_after_merge():
    cfg = _cfg('''
        def f(self):
            if self._flag:
                with self._lock:
                    self._x = 1
            self._y = 2
        ''')
    states = forward_dataflow(cfg, _lock_transfer, frozenset(),
                              lambda a, b: a & b)
    # After the if merges the locked and unlocked paths, nothing is
    # must-held; at the exit the set must be empty.
    assert states[CFG.EXIT] == frozenset()


def test_may_analysis_keeps_unreleased_lock():
    cfg = _cfg('''
        def f(self):
            self._lock.acquire()
            if self._flag:
                return 1
            return 2
        ''')

    def transfer(state, event):
        if isinstance(event, ast.AST):
            for node in ast.walk(event):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "acquire"):
                    return state | {"lock"}
        return state

    states = forward_dataflow(cfg, transfer, frozenset(),
                              lambda a, b: a | b)
    assert states[CFG.EXIT] == frozenset({"lock"})


def test_loop_fixpoint_converges():
    cfg = _cfg('''
        def f(self):
            while self._more:
                with self._lock:
                    self._n += 1
            return self._n
        ''')
    states = forward_dataflow(cfg, _lock_transfer, frozenset(),
                              lambda a, b: a & b)
    assert states[CFG.EXIT] == frozenset()
