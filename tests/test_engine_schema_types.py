"""Tests for SQL types, schemas, and join edges."""

import pytest

from repro.errors import SchemaError
from repro.engine.types import DataType
from repro.engine.schema import (
    Column,
    DatabaseSchema,
    JoinEdge,
    TableSchema,
    qualified,
    split_qualified,
)


class TestDataType:
    def test_byte_widths_positive(self):
        for dtype in DataType:
            assert dtype.byte_width >= 1

    def test_parse_aliases(self):
        assert DataType.parse("integer") is DataType.INT
        assert DataType.parse("VARCHAR(255)") is DataType.VARCHAR
        assert DataType.parse("numeric(12,2)") is DataType.DECIMAL
        assert DataType.parse(" text ") is DataType.VARCHAR

    def test_parse_unknown(self):
        with pytest.raises(SchemaError):
            DataType.parse("geometry")

    def test_classification(self):
        assert DataType.INT.is_numeric and not DataType.INT.is_string
        assert DataType.VARCHAR.is_string and not DataType.VARCHAR.is_numeric
        assert DataType.DATE.is_numeric

    def test_numpy_dtypes_exist(self):
        for dtype in DataType:
            assert dtype.numpy_dtype is not None


class TestTableSchema:
    def _table(self):
        return TableSchema("t", [Column("a", DataType.INT),
                                 Column("b", DataType.VARCHAR)],
                           primary_key="a")

    def test_lookup(self):
        table = self._table()
        assert table.column("a").dtype is DataType.INT
        assert table.has_column("b")
        assert not table.has_column("c")

    def test_row_width(self):
        assert self._table().row_byte_width == 4 + 16

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INT),
                              Column("a", DataType.INT)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_bad_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INT)], primary_key="z")

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            self._table().column("nope")


class TestDatabaseSchema:
    def _schema(self):
        a = TableSchema("a", [Column("x", DataType.INT)], primary_key="x")
        b = TableSchema("b", [Column("y", DataType.INT)])
        return DatabaseSchema("db", [a, b], [JoinEdge("b", "y", "a", "x")])

    def test_table_lookup(self):
        schema = self._schema()
        assert schema.table("a").name == "a"
        with pytest.raises(SchemaError):
            schema.table("zzz")

    def test_edge_between_orients(self):
        schema = self._schema()
        edge = schema.edge_between("a", "b")
        assert edge.left_table == "a" and edge.left_column == "x"
        edge2 = schema.edge_between("b", "a")
        assert edge2.left_table == "b"
        assert schema.edge_between("a", "a") is None

    def test_edges_for(self):
        schema = self._schema()
        assert len(schema.edges_for("a")) == 1
        assert len(schema.edges_for("b")) == 1

    def test_duplicate_tables_rejected(self):
        a = TableSchema("a", [Column("x", DataType.INT)])
        with pytest.raises(SchemaError):
            DatabaseSchema("db", [a, a])

    def test_bad_edge_rejected(self):
        a = TableSchema("a", [Column("x", DataType.INT)])
        with pytest.raises(SchemaError):
            DatabaseSchema("db", [a], [JoinEdge("a", "x", "missing", "y")])

    def test_reversed_edge_preserves_fanout(self):
        edge = JoinEdge("a", "x", "b", "y", fanout=2.5)
        rev = edge.reversed()
        assert rev.left_table == "b" and rev.fanout == 2.5


class TestQualifiedNames:
    def test_roundtrip(self):
        assert split_qualified(qualified("t", "c")) == ("t", "c")

    def test_invalid(self):
        with pytest.raises(SchemaError):
            split_qualified("nodot")
