"""Concurrency checker (LK rules): per-rule triggers and clean passes.

Each LK rule gets at least one planted-defect fixture that fires it and
one clean fixture that exercises the same shape without the defect —
the clean side is what separates a dataflow analysis from a grep. The
mutation test takes a correct acquire/try/finally/release pattern,
deletes the ``release()``, and asserts the checker notices.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.checks.concurrency import analyze_source, check_lock_discipline
from repro.errors import CheckError


def _findings(source):
    return analyze_source(textwrap.dedent(source), "fixture.py")


def _rules(source):
    return {f.rule for f in _findings(source)}


# ---------------------------------------------------------------------------
# LK001 — guarded elsewhere, unguarded here
# ---------------------------------------------------------------------------

_LK001_BAD = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0

    def hit(self):
        with self._lock:
            self._hits += 1

    def hit_unsafely(self):
        self._hits += 1
'''

_LK001_CLEAN = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0

    def hit(self):
        with self._lock:
            self._hits += 1

    def snapshot(self):
        with self._lock:
            return self._hits
'''


def test_lk001_fires_on_unguarded_access():
    findings = [f for f in _findings(_LK001_BAD) if f.rule == "LK001"]
    assert len(findings) == 1
    assert findings[0].line == 14
    assert "hit_unsafely" in findings[0].message


def test_lk001_clean_when_every_access_guarded():
    assert _rules(_LK001_CLEAN) == set()


def test_lk001_manual_acquire_release_counts_as_guarded():
    # A manual acquire/try/finally/release pair guards exactly like a
    # `with` block — the lexical predecessor could not see this.
    source = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0

    def hit(self):
        with self._lock:
            self._hits += 1

    def hit_manually(self):
        self._lock.acquire()
        try:
            self._hits += 1
        finally:
            self._lock.release()
'''
    assert _rules(source) == set()


def test_lk001_early_return_path_still_guarded():
    source = '''
import threading

class Gate:
    def __init__(self):
        self._lock = threading.Lock()
        self._open = False

    def toggle(self):
        with self._lock:
            if self._open:
                return False
            self._open = True
        return True
'''
    assert _rules(source) == set()


# ---------------------------------------------------------------------------
# LK002 — never guarded anywhere
# ---------------------------------------------------------------------------

def test_lk002_fires_on_never_guarded_write():
    source = '''
import threading

class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def add(self, n):
        self._total = self._total + n
'''
    findings = [f for f in _findings(source) if f.rule == "LK002"]
    assert len(findings) == 1
    assert "_total" in findings[0].message


def test_lk002_ignores_call_receivers():
    source = '''
import threading

class Done:
    def __init__(self):
        self._lock = threading.Lock()
        self._event = threading.Event()

    def finish(self):
        self._event.set()
'''
    assert _rules(source) == set()


# ---------------------------------------------------------------------------
# LK003 — lock-order inversion
# ---------------------------------------------------------------------------

_LK003_BAD = '''
import threading

class TwoLocks:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def ab(self):
        with self._a:
            with self._b:
                pass

    def ba(self):
        with self._b:
            with self._a:
                pass
'''


def test_lk003_fires_on_inverted_order():
    findings = [f for f in _findings(_LK003_BAD) if f.rule == "LK003"]
    assert len(findings) == 1
    assert "inversion" in findings[0].message


def test_lk003_clean_when_order_is_consistent():
    consistent = _LK003_BAD.replace("with self._b:\n            "
                                    "with self._a:",
                                    "with self._a:\n            "
                                    "with self._b:")
    assert _rules(consistent) == set()


# ---------------------------------------------------------------------------
# LK004 — blocking call under a lock
# ---------------------------------------------------------------------------

def test_lk004_fires_on_sleep_under_lock():
    source = '''
import threading
import time

class Poller:
    def __init__(self):
        self._lock = threading.Lock()

    def poll(self):
        with self._lock:
            time.sleep(0.1)
'''
    findings = [f for f in _findings(source) if f.rule == "LK004"]
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_lk004_clean_when_sleep_is_outside_lock():
    source = '''
import threading
import time

class Poller:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def poll(self):
        with self._lock:
            self._n += 1
        time.sleep(0.1)
'''
    assert _rules(source) == set()


def test_lk004_condition_wait_is_not_blocking():
    # Condition.wait releases the lock atomically while sleeping; it is
    # the designed pattern, not a bug.
    source = '''
import threading

class Queueish:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = 0

    def take(self):
        with self._cond:
            while self._items == 0:
                self._cond.wait()
            self._items -= 1
'''
    assert _rules(source) == set()


def test_lk004_thread_join_under_lock():
    source = '''
import threading

class Stopper:
    def __init__(self):
        self._lock = threading.Lock()
        self._worker = threading.Thread(target=lambda: None)

    def stop(self):
        with self._lock:
            self._worker.join()
'''
    assert "LK004" in _rules(source)


# ---------------------------------------------------------------------------
# LK005 — await under a lock
# ---------------------------------------------------------------------------

def test_lk005_fires_on_await_under_lock():
    source = '''
import threading

class AsyncThing:
    def __init__(self):
        self._lock = threading.Lock()

    async def run(self, coro):
        with self._lock:
            await coro
'''
    findings = [f for f in _findings(source) if f.rule == "LK005"]
    assert len(findings) == 1


def test_lk005_clean_when_await_is_outside_lock():
    source = '''
import threading

class AsyncThing:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    async def run(self, coro):
        with self._lock:
            self._n += 1
        await coro
'''
    assert _rules(source) == set()


# ---------------------------------------------------------------------------
# LK006 — lock may still be held at exit (and the mutation test)
# ---------------------------------------------------------------------------

_MANUAL_PAIR = '''
import threading

class Manual:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def bump(self):
        self._lock.acquire()
        try:
            self._n += 1
        finally:
            self._lock.release()
'''


def test_lk006_clean_on_correct_manual_pair():
    assert _rules(_MANUAL_PAIR) == set()


def test_lk006_mutation_deleting_release_fires():
    # Mutation test: delete the release() from the correct pattern and
    # the checker must notice the lock can leak out of the function.
    mutated = _MANUAL_PAIR.replace("            self._lock.release()\n",
                                   "            pass\n")
    assert mutated != _MANUAL_PAIR
    findings = [f for f in _findings(mutated) if f.rule == "LK006"]
    assert len(findings) == 1
    assert "_lock" in findings[0].message


def test_lk006_fires_when_one_branch_skips_release():
    source = '''
import threading

class Leaky:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = False

    def maybe(self):
        self._lock.acquire()
        if self._ready:
            self._lock.release()
'''
    assert "LK006" in _rules(source)


def test_lk006_exempts_explicit_lock_protocol_methods():
    source = '''
import threading

class Guard:
    def __init__(self):
        self._lock = threading.Lock()

    def __enter__(self):
        self._lock.acquire()
        return self

    def __exit__(self, *exc):
        self._lock.release()
'''
    assert _rules(source) == set()


# ---------------------------------------------------------------------------
# LK007 — release of a lock not held
# ---------------------------------------------------------------------------

def test_lk007_fires_on_unpaired_release():
    source = '''
import threading

class Sloppy:
    def __init__(self):
        self._lock = threading.Lock()

    def oops(self):
        self._lock.release()
'''
    findings = [f for f in _findings(source) if f.rule == "LK007"]
    assert len(findings) == 1
    assert "RuntimeError" in findings[0].message


def test_lk007_clean_when_release_follows_acquire():
    assert "LK007" not in _rules(_MANUAL_PAIR)


# ---------------------------------------------------------------------------
# LK008 — re-acquiring a held non-reentrant lock
# ---------------------------------------------------------------------------

_LK008_BAD = '''
import threading

class Deadlock:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def outer(self):
        with self._lock:
            with self._lock:
                self._n += 1
'''


def test_lk008_fires_on_nested_plain_lock():
    findings = [f for f in _findings(_LK008_BAD) if f.rule == "LK008"]
    assert len(findings) == 1
    assert "self-deadlock" in findings[0].message


def test_lk008_clean_for_rlock():
    reentrant = _LK008_BAD.replace("threading.Lock()", "threading.RLock()")
    assert _rules(reentrant) == set()


# ---------------------------------------------------------------------------
# scope rules and entry points
# ---------------------------------------------------------------------------

def test_closures_are_analyzed_with_their_own_lockset():
    # The closure runs later, on another thread: the definition-point
    # lock does not protect it, but its own `with` does.
    source = '''
import threading

class Spawner:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def start(self):
        def work():
            with self._lock:
                self._n += 1
        return work
'''
    assert _rules(source) == set()


def test_closure_without_its_own_lock_is_unguarded():
    source = '''
import threading

class Spawner:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def guarded(self):
        with self._lock:
            self._n += 1

    def start(self):
        def work():
            self._n += 1
        return work
'''
    assert "LK001" in _rules(source)


def test_classes_without_locks_are_skipped():
    source = '''
class Plain:
    def __init__(self):
        self._n = 0

    def bump(self):
        self._n += 1
'''
    assert _findings(source) == []


def test_serving_layer_is_clean_under_dataflow_analysis():
    assert check_lock_discipline() == []


def test_missing_path_is_typed_error():
    with pytest.raises(CheckError):
        check_lock_discipline(paths=["/nonexistent/nowhere.py"])


def test_syntax_error_is_typed_error():
    with pytest.raises(CheckError):
        analyze_source("def broken(:", "broken.py")
