"""Tests for model inspection and prediction explanation."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.trees.boosting import BoostingParams
from repro.core.analysis import (
    error_breakdown,
    explain_prediction,
    feature_importance_report,
    format_importance_table,
    runtime_bucket,
)
from repro.core.dataset import build_dataset
from repro.core.model import T3Config, T3Model


@pytest.fixture(scope="module")
def toy_workload():
    from tests.conftest import build_toy_instance
    from repro.datagen.workload import WorkloadBuilder, WorkloadConfig
    config = WorkloadConfig(queries_per_structure=3,
                            include_fixed_benchmarks=False)
    return WorkloadBuilder(build_toy_instance(), config).build()


@pytest.fixture(scope="module")
def model(toy_workload):
    config = T3Config(boosting=BoostingParams(n_rounds=25),
                      compile_to_native=False)
    return T3Model.train(toy_workload, config)


class TestFeatureImportance:
    def test_report_shape(self, model):
        report = feature_importance_report(model, top=10)
        assert 1 <= len(report) <= 10
        assert all(item.splits > 0 for item in report)
        # Sorted descending.
        splits = [item.splits for item in report]
        assert splits == sorted(splits, reverse=True)

    def test_fractions_sum_below_one(self, model):
        report = feature_importance_report(model, top=5)
        assert sum(item.fraction for item in report) <= 1.0 + 1e-9

    def test_cardinality_features_matter(self, model):
        """Input cardinality features must be among the most-used."""
        report = feature_importance_report(model, top=15)
        names = {item.name for item in report}
        assert any("card" in name or "percentage" in name for name in names)

    def test_format_table(self, model):
        text = format_importance_table(feature_importance_report(model, 5))
        assert "feature" in text and "%" in text


class TestErrorBreakdown:
    def test_by_group(self, model, toy_workload):
        breakdown = error_breakdown(model, toy_workload,
                                    key=lambda q: q.group)
        assert len(breakdown) == len({q.group for q in toy_workload})
        total = sum(summary.count for summary in breakdown.values())
        assert total == len(toy_workload)

    def test_by_runtime_bucket(self, model, toy_workload):
        breakdown = error_breakdown(model, toy_workload, key=runtime_bucket)
        assert all(name.startswith("1e") for name in breakdown)


class TestExplanation:
    def test_explanation_matches_prediction(self, model, toy_workload):
        dataset = build_dataset(toy_workload[:4])
        vector = dataset.X[0]
        explanation = explain_prediction(model, vector)
        raw = model.predict_raw_one(vector)
        assert explanation.raw_prediction == pytest.approx(raw, rel=1e-9)
        assert len(explanation.tree_contributions) == model.booster.n_trees

    def test_touched_features_used_by_model(self, model, toy_workload):
        dataset = build_dataset(toy_workload[:4])
        explanation = explain_prediction(model, dataset.X[0])
        names = set(model.registry.feature_names())
        assert set(explanation.feature_touches) <= names
        assert explanation.top_features(3)

    def test_paths_collected_on_request(self, model, toy_workload):
        dataset = build_dataset(toy_workload[:4])
        explanation = explain_prediction(model, dataset.X[0],
                                         collect_paths=True)
        assert len(explanation.paths) == model.booster.n_trees
        step = explanation.paths[0][0]
        assert step.went_left == (step.value <= step.threshold)

    def test_wrong_size_rejected(self, model):
        with pytest.raises(TrainingError):
            explain_prediction(model, np.zeros(3))
