"""Tests for the analytic execution simulator."""

import numpy as np
import pytest

from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.expressions import (
    Aggregate,
    AggregateFunction,
    ComparisonOp,
    ComparisonPredicate,
)
from repro.engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalScan,
    LogicalSort,
)
from repro.engine.optimizer import Optimizer
from repro.engine.pipelines import decompose_into_pipelines
from repro.engine.simulator import (
    CacheHierarchy,
    ExecutionSimulator,
    SimulatorConfig,
)
from repro.metrics import consistent_run_deviation


@pytest.fixture
def optimizer(toy_instance):
    return Optimizer(toy_instance.schema, toy_instance.catalog)


@pytest.fixture
def simulator(toy_instance):
    return ExecutionSimulator(toy_instance.catalog)


def _edge(instance, left, right):
    return instance.schema.edge_between(left, right)


class TestCacheHierarchy:
    def test_penalty_monotone(self):
        cache = CacheHierarchy()
        sizes = [1e3, 1e5, 1e7, 1e9, 1e11]
        penalties = [cache.penalty(s) for s in sizes]
        assert all(b >= a for a, b in zip(penalties, penalties[1:]))

    def test_bounds(self):
        cache = CacheHierarchy()
        assert cache.penalty(1.0) == cache.l1_penalty
        assert cache.penalty(1e15) == cache.dram_penalty


class TestDeterministicTimes:
    def test_query_time_is_sum_of_pipelines(self, optimizer, simulator,
                                            toy_instance):
        logical = LogicalGroupBy(
            LogicalJoin(LogicalScan("customer"), LogicalScan("orders"),
                        _edge(toy_instance, "customer", "orders")),
            [("orders", "o_status")], [Aggregate(AggregateFunction.COUNT)])
        plan = optimizer.optimize(logical)
        pipelines = decompose_into_pipelines(plan)
        total = sum(simulator.pipeline_time(p) for p in pipelines)
        assert simulator.query_time(plan) == pytest.approx(total)

    def test_selective_scan_is_cheaper(self, optimizer, simulator):
        full = optimizer.optimize(LogicalScan("orders"))
        filtered = optimizer.optimize(LogicalScan("orders", [
            ComparisonPredicate("orders", "o_total", ComparisonOp.LE, 100)]))
        # The filtered scan still reads all tuples but emits fewer.
        assert simulator.query_time(filtered) <= \
            simulator.query_time(full) * 1.6
        assert simulator.query_time(filtered) > 0

    def test_sort_superlinear(self, optimizer, simulator, toy_instance):
        """Per-tuple cost of the Sort build stage grows with input size."""
        exact = ExactCardinalityModel(toy_instance.catalog)

        def sort_build_per_tuple(selectivity_value):
            predicates = []
            if selectivity_value is not None:
                predicates = [ComparisonPredicate(
                    "orders", "o_total", ComparisonOp.LE, selectivity_value)]
            plan = optimizer.optimize(LogicalSort(
                LogicalScan("orders", predicates), [("orders", "o_total")]))
            pipeline = decompose_into_pipelines(plan)[0]
            from repro.engine.pipelines import compute_stage_flows
            build = compute_stage_flows(pipeline, exact)[-1]
            assert build.ref.label() == "Sort_Build"
            return simulator._stage_time(build) / build.tuples_in

        small = sort_build_per_tuple(500)      # ~2.5k tuples
        large = sort_build_per_tuple(None)     # 50k tuples
        assert large > small * 1.15

    def test_speed_factor_scales_time(self, optimizer, toy_instance):
        plan = optimizer.optimize(LogicalScan("orders"))
        fast = ExecutionSimulator(toy_instance.catalog,
                                  SimulatorConfig(speed_factor=2.0))
        slow = ExecutionSimulator(toy_instance.catalog,
                                  SimulatorConfig(speed_factor=1.0))
        assert slow.query_time(plan) == pytest.approx(
            2.0 * fast.query_time(plan))


class TestNoisyRuns:
    def test_runs_scatter_around_expectation(self, optimizer, simulator):
        plan = optimizer.optimize(LogicalScan("orders"))
        execution = simulator.execute(plan, n_runs=10)
        runs = np.array(execution.run_times)
        assert abs(np.median(runs) / execution.total_time - 1) < 0.2
        assert runs.std() > 0

    def test_deterministic_given_seed(self, optimizer, simulator):
        plan = optimizer.optimize(LogicalScan("orders"), "q")
        a = simulator.execute(plan, n_runs=5)
        b = simulator.execute(plan, n_runs=5)
        assert a.run_times == b.run_times

    def test_run_seed_changes_noise(self, optimizer, simulator):
        plan = optimizer.optimize(LogicalScan("orders"), "q")
        a = simulator.execute(plan, n_runs=5, run_seed=0)
        b = simulator.execute(plan, n_runs=5, run_seed=1)
        assert a.run_times != b.run_times

    def test_pipeline_run_matrix_shape(self, optimizer, simulator,
                                       toy_instance):
        logical = LogicalJoin(LogicalScan("customer"), LogicalScan("orders"),
                              _edge(toy_instance, "customer", "orders"))
        plan = optimizer.optimize(logical)
        execution = simulator.execute(plan, n_runs=7)
        assert execution.pipeline_run_times.shape == (
            7, len(execution.pipelines))
        medians = execution.median_pipeline_times()
        assert len(medians) == len(execution.pipelines)
        assert np.all(medians > 0)

    def test_noise_calibration_matches_table3(self, optimizer, simulator,
                                              toy_workload):
        """~90 % of queries should deviate < ~13 % across repeated runs
        (the paper's Table 3)."""
        deviations = [consistent_run_deviation(q.execution.run_times)
                      for q in toy_workload]
        p90 = float(np.percentile(deviations, 90))
        assert 1.02 < p90 < 1.25

    def test_invalid_runs(self, optimizer, simulator):
        from repro.errors import PlanError
        plan = optimizer.optimize(LogicalScan("orders"))
        with pytest.raises(PlanError):
            simulator.execute(plan, n_runs=0)
