"""Ensemble analyzer (EA rules): hand-built oracle trees, per-rule.

The oracle model is three hand-built trees with exactly two planted
defects — one provably-dead branch and one non-finite leaf — so the
expected findings are known in full, not just by rule id. The
remaining rules each get a minimal trigger and a clean counterpart.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.checks.codegen_verify import self_check_model
from repro.checks.ensemble_analyze import EXP_OVERFLOW, analyze_ensemble
from repro.trees.boosting import BoostedTreesModel
from repro.trees.tree import Tree, TreeNode


def _node(feature, threshold, left, right):
    return TreeNode(feature=feature, threshold=threshold,
                    left=left, right=right)


def _leaf(value):
    return TreeNode(value=value)


def _model(trees, base_score=0.0, n_features=4):
    return BoostedTreesModel(trees, base_score, n_features)


def _oracle_model():
    """3 trees, exactly one dead branch and one non-finite leaf.

    Tree 0 plants the dead branch: the root sends f0 <= 5 left, where a
    second split on f0 at 7 can only go left — its right child (node 4)
    is unreachable.
    Tree 1 plants the non-finite leaf. Tree 2 is clean.
    """
    dead_branch = Tree.from_nodes([
        _node(0, 5.0, 1, 2),
        _node(0, 7.0, 3, 4),     # f0 in (-inf, 5]: "x[0] > 7" impossible
        _leaf(0.5),
        _leaf(0.1),
        _leaf(0.2),              # unreachable
    ])
    nan_leaf = Tree.from_nodes([
        _node(1, 0.0, 1, 2),
        _leaf(float("nan")),
        _leaf(0.3),
    ])
    clean = Tree.from_nodes([
        _node(2, 1.0, 1, 2),
        _leaf(-0.1),
        _leaf(0.4),
    ])
    return _model([dead_branch, nan_leaf, clean])


def test_oracle_model_yields_exactly_the_planted_defects():
    findings = analyze_ensemble(_oracle_model(), path="oracle")
    by_rule = {}
    for finding in findings:
        by_rule.setdefault(finding.rule, []).append(finding)
    assert set(by_rule) == {"EA001", "EA002", "EA003"}
    assert len(by_rule["EA001"]) == 1
    assert len(by_rule["EA002"]) == 1
    assert len(by_rule["EA003"]) == 1

    dead = by_rule["EA001"][0]
    assert "tree 0" in dead.message and "node 1" in dead.message
    assert "x[0] > 7" in dead.message
    unreachable = by_rule["EA002"][0]
    assert "tree 0" in unreachable.message and "leaf 4" in unreachable.message
    nonfinite = by_rule["EA003"][0]
    assert "tree 1" in nonfinite.message and "leaf 1" in nonfinite.message


def test_oracle_model_without_defects_is_clean():
    clean = Tree.from_nodes([
        _node(0, 5.0, 1, 2),
        _node(0, 3.0, 3, 4),     # 3 < 5: both children reachable
        _leaf(0.5),
        _leaf(0.1),
        _leaf(0.2),
    ])
    assert analyze_ensemble(_model([clean])) == []


# ---------------------------------------------------------------------------
# per-rule triggers and clean passes
# ---------------------------------------------------------------------------

def test_ea001_dead_left_branch():
    tree = Tree.from_nodes([
        _node(0, 5.0, 1, 2),
        _leaf(0.1),
        _node(0, 5.0, 3, 4),     # f0 in (5, inf): "x[0] <= 5" impossible
        _leaf(0.2),
        _leaf(0.3),
    ])
    findings = analyze_ensemble(_model([tree]))
    assert [f.rule for f in findings] == ["EA001", "EA002"]
    assert "x[0] <= 5" in findings[0].message


def test_ea004_reachable_prediction_overflows_decode():
    overflowing = _model([Tree.single_leaf(-(EXP_OVERFLOW + 1.0))])
    findings = analyze_ensemble(overflowing)
    assert [f.rule for f in findings] == ["EA004"]
    assert "exp(-raw)" in findings[0].message


def test_ea004_clean_just_inside_the_overflow_bound():
    safe = _model([Tree.single_leaf(-(EXP_OVERFLOW - 1.0))])
    assert analyze_ensemble(safe) == []


def test_ea004_sums_minima_across_trees_and_base():
    # Each tree alone is safe; together with the base score they sum
    # below -log(DBL_MAX).
    half = -(EXP_OVERFLOW / 2.0)
    model = _model([Tree.single_leaf(half), Tree.single_leaf(half)],
                   base_score=-2.0)
    assert [f.rule for f in analyze_ensemble(model)] == ["EA004"]


def test_ea005_near_tie_thresholds_warn():
    a = Tree.from_nodes([_node(0, 1.0, 1, 2), _leaf(0.0), _leaf(1.0)])
    b = Tree.from_nodes([_node(0, 1.0 + 1e-8, 1, 2), _leaf(0.0), _leaf(1.0)])
    findings = analyze_ensemble(_model([a, b]))
    assert [f.rule for f in findings] == ["EA005"]
    assert findings[0].severity.value == "warning"
    assert "float32 ulp" in findings[0].message


def test_ea005_identical_thresholds_are_exact_not_ambiguous():
    a = Tree.from_nodes([_node(0, 1.0, 1, 2), _leaf(0.0), _leaf(1.0)])
    b = Tree.from_nodes([_node(0, 1.0, 1, 2), _leaf(0.2), _leaf(0.8)])
    assert analyze_ensemble(_model([a, b])) == []


def test_ea006_unused_feature_gated_and_named():
    tree = Tree.from_nodes([_node(0, 1.0, 1, 2), _leaf(0.0), _leaf(1.0)])
    model = _model([tree], n_features=3)
    assert analyze_ensemble(model) == []  # off by default
    findings = analyze_ensemble(
        model, feature_names=["a", "b", "c"], check_unused_features=True)
    assert [f.rule for f in findings] == ["EA006", "EA006"]
    assert {"b", "c"} <= {w for f in findings for w in f.message.split()}


def test_ea007_shared_and_orphaned_nodes():
    tree = Tree.from_nodes([
        _node(0, 1.0, 1, 1),     # both children point at node 1
        _leaf(0.0),
        _leaf(1.0),              # orphaned
    ])
    findings = analyze_ensemble(_model([tree]))
    assert [f.rule for f in findings] == ["EA007", "EA007"]
    messages = " | ".join(f.message for f in findings)
    assert "shared by 2 parents" in messages
    assert "orphaned" in messages


def test_ea008_non_finite_threshold():
    tree = Tree.from_nodes([
        _node(0, float("inf"), 1, 2), _leaf(0.0), _leaf(1.0)])
    rules = {f.rule for f in analyze_ensemble(_model([tree]))}
    assert "EA008" in rules


def test_ea009_non_finite_base_score():
    model = _model([Tree.single_leaf(0.5)], base_score=float("nan"))
    findings = analyze_ensemble(model)
    assert [f.rule for f in findings] == ["EA009"]


def test_ea010_feature_index_out_of_range():
    tree = Tree.from_nodes([_node(7, 1.0, 1, 2), _leaf(0.0), _leaf(1.0)])
    findings = analyze_ensemble(_model([tree], n_features=4))
    assert [f.rule for f in findings] == ["EA010"]
    assert "reads past the vector" in findings[0].message


def test_broken_topology_suppresses_interval_walk():
    # A malformed tree must not also spray EA001/EA002 noise: interval
    # propagation over broken topology is meaningless.
    tree = Tree.from_nodes([
        _node(0, 1.0, 1, 1),
        _leaf(0.0),
        _leaf(1.0),
    ])
    rules = [f.rule for f in analyze_ensemble(_model([tree]))]
    assert set(rules) == {"EA007"}


# ---------------------------------------------------------------------------
# constants and the self-check model
# ---------------------------------------------------------------------------

def test_exp_overflow_matches_double_precision():
    assert math.isfinite(math.exp(EXP_OVERFLOW - 1e-6))
    with pytest.raises(OverflowError):
        math.exp(EXP_OVERFLOW + 1.0)
    with np.errstate(over="ignore"):
        assert np.isinf(np.exp(np.float64(EXP_OVERFLOW + 1.0)))


def test_self_check_model_is_clean():
    # The driver analyzes this model on every `repro-t3 check` run with
    # no --model; it must never carry a planted defect of its own.
    assert analyze_ensemble(self_check_model()) == []
