"""Exception-contract analyzer (EX rules): planted defects and clean twins.

Fixture corpora place modules under ``serving/`` so they fall inside the
boundary packages; each defines a local ``ReproError`` hierarchy, which
the analyzer resolves by name exactly as it does the real one.
"""

from __future__ import annotations

import textwrap

from repro.checks.exceptions import check_exception_contracts

_ERRORS = """
    class ReproError(Exception):
        pass

    class ServingError(ReproError):
        pass

    class QueueFullError(ServingError):
        pass
"""


def _findings(tmp_path, files):
    files = dict(files)
    files.setdefault("errors.py", _ERRORS)
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return check_exception_contracts(roots=[tmp_path])


def _rules(tmp_path, files):
    return {f.rule for f in _findings(tmp_path, files)}


# ---------------------------------------------------------------------------
# EX001 — untyped escape from a public boundary function
# ---------------------------------------------------------------------------


def test_ex001_untyped_escape_from_boundary(tmp_path):
    findings = [f for f in _findings(tmp_path, {"serving/api.py": """
        def predict(x):
            if x < 0:
                raise RuntimeError("negative")
            return x
    """}) if f.rule == "EX001"]
    assert len(findings) == 1
    assert "RuntimeError" in findings[0].message


def test_ex001_typed_escape_is_clean(tmp_path):
    assert "EX001" not in _rules(tmp_path, {"serving/api.py": """
        from errors import ServingError

        class PredictError(ServingError):
            pass

        def predict(x):
            if x < 0:
                raise PredictError("negative")
            return x
    """})


def test_ex001_escape_through_private_helper(tmp_path):
    # The raise is two calls deep in private helpers; the summary
    # still carries it to the public boundary.
    assert "EX001" in _rules(tmp_path, {"serving/api.py": """
        def _deep(x):
            raise KeyError(x)

        def _mid(x):
            return _deep(x)

        def predict(x):
            return _mid(x)
    """})


def test_ex001_handler_discharges_the_contract(tmp_path):
    assert "EX001" not in _rules(tmp_path, {"serving/api.py": """
        def _deep(x):
            raise KeyError(x)

        def predict(x):
            try:
                return _deep(x)
            except KeyError:
                return None
    """})


def test_ex001_outside_boundary_packages_is_exempt(tmp_path):
    assert "EX001" not in _rules(tmp_path, {"engine/core.py": """
        def evaluate(x):
            raise RuntimeError("engine internals may stay untyped")
    """})


# ---------------------------------------------------------------------------
# EX002 — except BaseException without re-raise
# ---------------------------------------------------------------------------


def test_ex002_swallowed_base_exception(tmp_path):
    assert "EX002" in _rules(tmp_path, {"serving/api.py": """
        def guard(fn):
            try:
                return fn()
            except BaseException:
                return None
    """})


def test_ex002_reraise_is_clean(tmp_path):
    assert "EX002" not in _rules(tmp_path, {"serving/api.py": """
        def guard(fn, log):
            try:
                return fn()
            except BaseException:
                log()
                raise
    """})


# ---------------------------------------------------------------------------
# EX003 — raise in handler without `from`
# ---------------------------------------------------------------------------


def test_ex003_cause_lost(tmp_path):
    assert "EX003" in _rules(tmp_path, {"serving/api.py": """
        from errors import ServingError

        def convert(fn):
            try:
                return fn()
            except ValueError:
                raise ServingError("bad value")
    """})


def test_ex003_from_is_clean(tmp_path):
    assert "EX003" not in _rules(tmp_path, {"serving/api.py": """
        from errors import ServingError

        def convert(fn):
            try:
                return fn()
            except ValueError as exc:
                raise ServingError("bad value") from exc
    """})


# ---------------------------------------------------------------------------
# EX004 — ServingError subclass with no envelope mapping
# ---------------------------------------------------------------------------

_ENVELOPE = """
    from errors import QueueFullError, ReproError, ServingError

    class UnmappedError(ServingError):
        pass

    def error_response(exc):
        if isinstance(exc, QueueFullError):
            return 429, "queue_full"
        if isinstance(exc, ReproError):
            return 400, "bad_request"
        return 500, "internal_error"
"""


def test_ex004_unmapped_serving_subclass(tmp_path):
    findings = [f for f in _findings(
        tmp_path, {"serving/front.py": _ENVELOPE})
        if f.rule == "EX004"]
    assert len(findings) == 1
    assert "UnmappedError" in findings[0].message


def test_ex004_mapped_ancestor_suffices(tmp_path):
    # LoadShed subclassing QueueFullError inherits its 429 mapping.
    assert "EX004" not in _rules(tmp_path, {"serving/front.py": """
        from errors import QueueFullError, ReproError

        class LoadShedError(QueueFullError):
            pass

        def error_response(exc):
            if isinstance(exc, QueueFullError):
                return 429, "queue_full"
            if isinstance(exc, ReproError):
                return 400, "bad_request"
            return 500, "internal_error"
    """})


# ---------------------------------------------------------------------------
# EX005 — broad handler swallows load-control errors
# ---------------------------------------------------------------------------


def test_ex005_swallowed_load_control(tmp_path):
    assert "EX005" in _rules(tmp_path, {"serving/api.py": """
        from errors import QueueFullError

        def submit(queue, item):
            try:
                queue.put(item)
                raise QueueFullError("full")
            except Exception:
                return None
    """})


def test_ex005_earlier_specific_handler_is_clean(tmp_path):
    assert "EX005" not in _rules(tmp_path, {"serving/api.py": """
        from errors import QueueFullError

        def submit(queue, item):
            try:
                queue.put(item)
                raise QueueFullError("full")
            except QueueFullError:
                raise
            except Exception:
                return None
    """})


# ---------------------------------------------------------------------------
# EX006 — raising the bare base class
# ---------------------------------------------------------------------------


def test_ex006_bare_base_raise(tmp_path):
    findings = [f for f in _findings(tmp_path, {"serving/api.py": """
        from errors import ServingError

        def predict(x):
            raise ServingError("something went wrong")
    """}) if f.rule == "EX006"]
    assert len(findings) == 1
    assert "specific subtype" in findings[0].message


def test_ex006_subtype_raise_is_clean(tmp_path):
    assert "EX006" not in _rules(tmp_path, {"serving/api.py": """
        from errors import QueueFullError

        def predict(x):
            raise QueueFullError("shedding")
    """})


# ---------------------------------------------------------------------------
# the real repo is clean
# ---------------------------------------------------------------------------


def test_repo_has_no_exception_findings():
    assert check_exception_contracts() == []
