"""Tests for the random query generator and structure groups."""

import pytest

from repro.engine.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalNode,
    LogicalScan,
    LogicalSort,
    LogicalTopK,
    LogicalWindow,
    count_joins,
)
from repro.datagen.instances import get_instance
from repro.datagen.querygen import RandomQueryGenerator
from repro.datagen.structures import QUERY_STRUCTURES, structure_by_name
from repro.errors import WorkloadError


@pytest.fixture(scope="module")
def generator():
    return RandomQueryGenerator(get_instance("tpch_sf1"), seed=11)


class TestStructures:
    def test_sixteen_structures(self):
        assert len(QUERY_STRUCTURES) == 16

    def test_unique_names(self):
        names = [s.name for s in QUERY_STRUCTURES]
        assert len(set(names)) == 16

    def test_lookup(self):
        assert structure_by_name("SeJSiA").aggregation == "simple"
        with pytest.raises(WorkloadError):
            structure_by_name("nope")


class TestGeneration:
    def test_deterministic(self, generator):
        structure = structure_by_name("SeJA")
        a = generator.generate(structure, 3)
        b = generator.generate(structure, 3)
        assert a.tables() == b.tables()

    def test_different_indices_differ(self, generator):
        structure = structure_by_name("SeJA")
        plans = [generator.generate(structure, i) for i in range(6)]
        signatures = {tuple(sorted(p.tables())) + (count_joins(p),)
                      for p in plans}
        assert len(signatures) > 1

    def test_join_counts_respect_structure(self, generator):
        structure = structure_by_name("J")
        for i in range(8):
            plan = generator.generate(structure, i)
            assert structure.joins[0] <= count_joins(plan) \
                <= structure.joins[1]

    def test_selection_free_structures_have_no_predicates(self, generator):
        structure = structure_by_name("J")
        for i in range(5):
            plan = generator.generate(structure, i)
            for node in plan.walk():
                if isinstance(node, LogicalScan):
                    assert not node.predicates

    def test_simple_aggregation_structure(self, generator):
        structure = structure_by_name("SiA")
        plan = generator.generate(structure, 0)
        assert isinstance(plan, LogicalGroupBy)
        assert plan.group_columns == []

    def test_group_aggregation_structure(self, generator):
        structure = structure_by_name("A")
        plan = generator.generate(structure, 0)
        assert isinstance(plan, LogicalGroupBy)
        assert plan.group_columns

    def test_window_structure(self, generator):
        structure = structure_by_name("W")
        plan = generator.generate(structure, 0)
        assert any(isinstance(n, LogicalWindow) for n in plan.walk())

    def test_all_structure_adds_order(self, generator):
        structure = structure_by_name("All")
        plan = generator.generate(structure, 0)
        assert isinstance(plan, (LogicalSort, LogicalTopK))

    def test_joins_follow_schema_edges(self, generator):
        schema = get_instance("tpch_sf1").schema
        structure = structure_by_name("SeJ")
        for i in range(6):
            plan = generator.generate(structure, i)
            for node in plan.walk():
                if isinstance(node, LogicalJoin):
                    assert schema.edge_between(
                        node.edge.left_table, node.edge.right_table) is not None

    def test_all_structures_on_all_instance_kinds(self):
        """Every structure generates on a synthetic and a real schema."""
        for instance_name in ("financial", "imdb"):
            generator = RandomQueryGenerator(get_instance(instance_name),
                                             seed=2)
            for structure in QUERY_STRUCTURES:
                plan = generator.generate(structure, 0)
                assert isinstance(plan, LogicalNode)

    def test_batch(self, generator):
        structure = structure_by_name("Se")
        plans = generator.generate_batch(structure, 4)
        assert len(plans) == 4


class TestExtendedOperators:
    def test_default_off_reproduces_legacy_queries(self):
        base = RandomQueryGenerator(get_instance("tpch_sf1"), seed=11)
        extended_off = RandomQueryGenerator(get_instance("tpch_sf1"),
                                            seed=11,
                                            extended_operators=False)
        structure = structure_by_name("SeJA")
        assert base.generate(structure, 2).tables() == \
            extended_off.generate(structure, 2).tables()

    def test_extended_mixes_semi_anti_and_distinct(self):
        from repro.engine.logical import LogicalDistinct
        generator = RandomQueryGenerator(get_instance("tpch_sf1"), seed=4,
                                         extended_operators=True)
        kinds = set()
        has_distinct = False
        for structure_name in ("SeJ", "J", "CSeJ", "SeJSiA"):
            structure = structure_by_name(structure_name)
            for index in range(20):
                plan = generator.generate(structure, index)
                for node in plan.walk():
                    if isinstance(node, LogicalJoin):
                        kinds.add(node.kind)
                    if isinstance(node, LogicalDistinct):
                        has_distinct = True
        assert "semi" in kinds or "anti" in kinds
        assert has_distinct

    def test_extended_queries_optimize_and_simulate(self):
        from repro.engine.optimizer import Optimizer
        from repro.engine.simulator import ExecutionSimulator
        instance = get_instance("tpch_sf1")
        generator = RandomQueryGenerator(instance, seed=4,
                                         extended_operators=True)
        optimizer = Optimizer(instance.schema, instance.catalog)
        simulator = ExecutionSimulator(instance.catalog)
        for structure_name in ("SeJ", "SeJSiA"):
            structure = structure_by_name(structure_name)
            for index in range(6):
                logical = generator.generate(structure, index)
                plan = optimizer.optimize(logical, f"ext_{index}")
                assert simulator.query_time(plan) > 0
