"""Codegen verifier: mutation detection, round-trips, and speed.

The mutation tests are the verifier's own test oracle: corrupt one
aspect of the model after generating the C source and assert the
verifier pins the divergence on the right rule.
"""

from __future__ import annotations

import copy
import math
import time

import numpy as np
import pytest

from repro.checks import parse_c_source, self_check_model, verify_codegen
from repro.errors import CheckError, CompilationError
from repro.rng import DEFAULT_SEED, derive_rng
from repro.treecomp.codegen import generate_c_source
from repro.trees.boosting import BoostingParams, train_boosted_trees
from repro.trees.tree import LEAF


def _rules(findings):
    return {f.rule for f in findings}


def _mutated(mutate):
    """Source from the pristine model, verified against a mutated copy."""
    model = self_check_model()
    source = generate_c_source(model)
    corrupt = copy.deepcopy(model)
    mutate(corrupt)
    return verify_codegen(corrupt, source=source)


def test_clean_self_check_model_verifies():
    assert verify_codegen(self_check_model()) == []


def test_flipped_threshold_detected():
    findings = _mutated(lambda m: m.trees[0].threshold.__setitem__(0, 42.5))
    assert "CG005" in _rules(findings)


def test_swapped_children_detected():
    def swap(m):
        tree = m.trees[0]
        tree.left[0], tree.right[0] = tree.right[0], tree.left[0]
    assert "CG003" in _rules(_mutated(swap))


def test_out_of_range_feature_index_detected():
    model = self_check_model()
    model.trees[0].feature[0] = model.n_features + 3
    findings = verify_codegen(model)
    assert "CG004" in _rules(findings)


def test_feature_index_mismatch_detected():
    def reroute(m):
        tree = m.trees[0]
        tree.feature[0] = (tree.feature[0] + 1) % m.n_features
    assert "CG004" in _rules(_mutated(reroute))


def test_wrong_base_score_detected():
    def bump(m):
        m.base_score += 1e-9
    assert "CG007" in _rules(_mutated(bump))


def test_missing_tree_function_detected():
    model = self_check_model()
    source = generate_c_source(model)
    truncated = source.replace("static double tree_4",
                               "static double shed_4")
    findings = verify_codegen(model, source=truncated)
    assert _rules(findings) & {"CG001", "CG002", "CG008"}


def test_unparseable_source_is_cg001():
    findings = verify_codegen(self_check_model(), source="int main() {}")
    assert _rules(findings) == {"CG001"}


def test_bare_nonfinite_literal_is_cg010():
    model = self_check_model()
    source = generate_c_source(model)
    first = repr(float(model.trees[0].value[2]))
    poisoned = source.replace(f"return {first};", "return nan;", 1)
    assert "CG010" in _rules(verify_codegen(model, source=poisoned))


def test_huge_val_leaves_round_trip():
    model = self_check_model()
    model.trees[1].value[3] = math.inf
    model.trees[2].value[4] = -math.inf
    assert verify_codegen(model) == []


def test_parse_recovers_exact_structure():
    model = self_check_model()
    parsed = parse_c_source(generate_c_source(model))
    assert len(parsed.trees) == model.n_trees
    assert parsed.base_score == model.base_score
    for parsed_tree, tree in zip(parsed.trees, model.trees):
        nodes, leaves = parsed_tree.count_nodes()
        assert nodes == len(tree.feature)
        assert leaves == int((tree.left == LEAF).sum())


def test_parsed_model_evaluates_like_the_booster():
    model = self_check_model()
    parsed = parse_c_source(generate_c_source(model))
    rng = derive_rng(DEFAULT_SEED, "tests", "codegen-eval")
    for x in rng.normal(size=(32, model.n_features)):
        assert parsed.evaluate(x) == model.predict_one(x)


def _trained_model(n_rounds: int):
    rng = derive_rng(DEFAULT_SEED, "tests", "codegen-trained", n_rounds)
    X = rng.uniform(0.0, 100.0, size=(256, 10))
    y = np.abs(X[:, 0] * 0.3 + X[:, 3] + rng.normal(size=256)) + 0.1
    params = BoostingParams(n_rounds=n_rounds, validation_fraction=0.2)
    return train_boosted_trees(X, y, params)


def test_trained_model_round_trips():
    assert verify_codegen(_trained_model(25)) == []


def test_200_tree_model_verifies_under_two_seconds():
    model = _trained_model(200)
    assert model.n_trees == 200
    started = time.perf_counter()
    findings = verify_codegen(model)
    elapsed = time.perf_counter() - started
    assert findings == []
    assert elapsed < 2.0, f"verification took {elapsed:.2f}s"


def test_codegen_rejects_nan_threshold():
    model = self_check_model()
    model.trees[0].threshold[0] = math.nan
    with pytest.raises(CompilationError):
        generate_c_source(model)


def test_codegen_rejects_infinite_threshold():
    model = self_check_model()
    model.trees[0].threshold[0] = math.inf
    with pytest.raises(CompilationError):
        generate_c_source(model)


def test_codegen_rejects_nan_leaf_and_base():
    model = self_check_model()
    model.trees[0].value[2] = math.nan
    with pytest.raises(CompilationError):
        generate_c_source(model)
    model = self_check_model()
    model.base_score = math.nan
    with pytest.raises(CompilationError):
        generate_c_source(model)


def test_parse_c_source_raises_typed_error():
    with pytest.raises(CheckError):
        parse_c_source("static double tree_0(const double *f) {")
