"""Tests for the vectorized executor on real generated data."""

import numpy as np
import pytest

from repro.engine.cardinality import ExactCardinalityModel
from repro.engine.executor import TableStore, VectorizedExecutor, batch_rows
from repro.engine.expressions import (
    Aggregate,
    AggregateFunction,
    ComparisonOp,
    ComparisonPredicate,
    ComputedColumn,
)
from repro.engine.logical import (
    LogicalDistinct,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTopK,
    LogicalUnion,
    LogicalWindow,
)
from repro.engine.optimizer import Optimizer, OptimizerConfig
from repro.datagen.tablegen import generate_table_store


@pytest.fixture(scope="module")
def toy_instance():
    from tests.conftest import build_toy_instance
    return build_toy_instance()


@pytest.fixture(scope="module")
def store(toy_instance):
    return generate_table_store(toy_instance, scale_fraction=0.2, seed=1)


@pytest.fixture(scope="module")
def executor(store):
    return VectorizedExecutor(store)


@pytest.fixture(scope="module")
def optimizer(toy_instance):
    return Optimizer(toy_instance.schema, toy_instance.catalog,
                     OptimizerConfig(enable_small_table_elimination=False))


def _edge(instance, left, right):
    return instance.schema.edge_between(left, right)


class TestScansAndFilters:
    def test_scan_returns_all_rows(self, optimizer, executor, store):
        result = executor.execute(optimizer.optimize(LogicalScan("orders")))
        assert result.n_result_rows == store.row_count("orders")

    def test_filter_matches_manual_count(self, optimizer, executor, store):
        predicate = ComparisonPredicate("orders", "o_total",
                                        ComparisonOp.LE, 2000)
        result = executor.execute(optimizer.optimize(
            LogicalScan("orders", [predicate])))
        expected = (store.columns("orders")["o_total"] <= 2000).sum()
        assert result.n_result_rows == expected

    def test_projection_prunes_columns(self, optimizer, executor):
        plan = optimizer.optimize(LogicalProject(
            LogicalScan("orders"), [("orders", "o_id")]))
        result = executor.execute(plan)
        assert list(result.result) == ["orders.o_id"]


class TestJoins:
    def test_inner_join_matches_numpy(self, optimizer, executor, store,
                                      toy_instance):
        logical = LogicalJoin(LogicalScan("customer"), LogicalScan("orders"),
                              _edge(toy_instance, "customer", "orders"))
        result = executor.execute(optimizer.optimize(logical))
        # Every order has exactly one matching customer (fk integrity).
        assert result.n_result_rows == store.row_count("orders")

    def test_join_filtered_build(self, optimizer, executor, store,
                                 toy_instance):
        predicate = ComparisonPredicate("customer", "c_balance",
                                        ComparisonOp.LE, 0)
        logical = LogicalJoin(
            LogicalScan("customer", [predicate]), LogicalScan("orders"),
            _edge(toy_instance, "customer", "orders"))
        result = executor.execute(optimizer.optimize(logical))
        keep = store.columns("customer")["c_balance"] <= 0
        qualifying = set(store.columns("customer")["c_id"][keep])
        expected = np.isin(store.columns("orders")["o_cust"],
                           list(qualifying)).sum()
        assert result.n_result_rows == expected

    def test_semi_join(self, optimizer, executor, store, toy_instance):
        predicate = ComparisonPredicate("orders", "o_total",
                                        ComparisonOp.LE, 100)
        logical = LogicalJoin(
            LogicalScan("orders", [predicate]), LogicalScan("customer"),
            _edge(toy_instance, "orders", "customer"), kind="semi")
        result = executor.execute(optimizer.optimize(logical))
        orders = store.columns("orders")
        customers_with = set(orders["o_cust"][orders["o_total"] <= 100])
        assert result.n_result_rows == len(
            customers_with & set(store.columns("customer")["c_id"]))

    def test_anti_join_complements_semi(self, optimizer, executor, store,
                                        toy_instance):
        edge = _edge(toy_instance, "orders", "customer")
        semi = executor.execute(optimizer.optimize(LogicalJoin(
            LogicalScan("orders"), LogicalScan("customer"), edge, "semi")))
        anti = executor.execute(optimizer.optimize(LogicalJoin(
            LogicalScan("orders"), LogicalScan("customer"), edge, "anti")))
        assert semi.n_result_rows + anti.n_result_rows == \
            store.row_count("customer")


class TestAggregation:
    def test_group_by_matches_numpy(self, optimizer, executor, store):
        logical = LogicalGroupBy(
            LogicalScan("orders"), [("orders", "o_status")],
            [Aggregate(AggregateFunction.COUNT),
             Aggregate(AggregateFunction.SUM, "orders.o_total")])
        result = executor.execute(optimizer.optimize(logical))
        status = store.columns("orders")["o_status"]
        totals = store.columns("orders")["o_total"]
        assert result.n_result_rows == len(np.unique(status))
        got = dict(zip(result.result["orders.o_status"],
                       result.result["#computed.agg_1"]))
        for value in np.unique(status):
            assert got[value] == pytest.approx(
                totals[status == value].sum())

    def test_simple_agg_single_row(self, optimizer, executor, store):
        logical = LogicalGroupBy(
            LogicalScan("orders"), [],
            [Aggregate(AggregateFunction.AVG, "orders.o_total")])
        result = executor.execute(optimizer.optimize(logical))
        assert result.n_result_rows == 1
        assert result.result["#computed.agg_0"][0] == pytest.approx(
            store.columns("orders")["o_total"].mean())

    def test_distinct(self, optimizer, executor, store):
        logical = LogicalDistinct(LogicalScan("orders"),
                                  [("orders", "o_status")])
        result = executor.execute(optimizer.optimize(logical))
        assert result.n_result_rows == len(
            np.unique(store.columns("orders")["o_status"]))


class TestOrderingAndWindows:
    def test_sort_orders_rows(self, optimizer, executor):
        logical = LogicalSort(LogicalScan("orders"), [("orders", "o_total")])
        result = executor.execute(optimizer.optimize(logical))
        values = result.result["orders.o_total"]
        assert (np.diff(values) >= 0).all()

    def test_topk(self, optimizer, executor, store):
        logical = LogicalTopK(LogicalScan("orders"), [("orders", "o_total")],
                              k=10)
        result = executor.execute(optimizer.optimize(logical))
        assert result.n_result_rows == 10
        smallest = np.sort(store.columns("orders")["o_total"])[:10]
        assert np.array_equal(np.sort(result.result["orders.o_total"]),
                              smallest)

    def test_limit(self, optimizer, executor):
        logical = LogicalLimit(LogicalScan("orders"), 7)
        result = executor.execute(optimizer.optimize(logical))
        assert result.n_result_rows == 7

    def test_window_rank_within_partitions(self, optimizer, executor):
        logical = LogicalWindow(LogicalScan("orders"),
                                [("orders", "o_status")],
                                [("orders", "o_total")], "rank")
        result = executor.execute(optimizer.optimize(logical))
        status = result.result["orders.o_status"]
        totals = result.result["orders.o_total"]
        ranks = result.result["#computed.rank"]
        for value in np.unique(status):
            mask = status == value
            part_ranks = ranks[mask]
            assert set(part_ranks) == set(range(1, mask.sum() + 1))
            ordered = totals[mask][np.argsort(part_ranks)]
            assert (np.diff(ordered) >= 0).all()

    def test_union_concatenates(self, optimizer, executor, store):
        logical = LogicalUnion(
            LogicalScan("orders", [ComparisonPredicate(
                "orders", "o_total", ComparisonOp.LE, 5000)]),
            LogicalScan("orders", [ComparisonPredicate(
                "orders", "o_total", ComparisonOp.GT, 5000)]))
        result = executor.execute(optimizer.optimize(logical))
        assert result.n_result_rows == store.row_count("orders")


class TestMapAndObservability:
    def test_map_computes_columns(self, optimizer, executor):
        logical = LogicalProject(
            LogicalScan("orders"), [("orders", "o_id")],
            [ComputedColumn("double_total",
                            ["orders.o_total", "orders.o_total"])])
        result = executor.execute(optimizer.optimize(logical))
        assert "#computed.double_total" in result.result

    def test_observed_cardinalities_match_exact_model(
            self, optimizer, executor, toy_instance):
        logical = LogicalJoin(LogicalScan("customer"), LogicalScan("orders"),
                              _edge(toy_instance, "customer", "orders"))
        plan = optimizer.optimize(logical)
        result = executor.execute(plan)
        # Scaled store: exact model predicts for the full-size instance,
        # so compare ratios rather than absolutes.
        exact = ExactCardinalityModel(toy_instance.catalog)
        join = plan.root
        model_ratio = (exact.output_cardinality(join)
                       / exact.output_cardinality(join.probe_child))
        observed_ratio = (result.observed_cardinalities[join.node_id]
                          / result.observed_cardinalities[
                              join.probe_child.node_id])
        assert model_ratio == pytest.approx(observed_ratio, rel=0.1)

    def test_pipeline_times_recorded(self, optimizer, executor):
        result = executor.execute(optimizer.optimize(LogicalScan("orders")))
        assert len(result.pipeline_times) == 1
        assert result.total_time > 0


class TestTableStore:
    def test_ragged_rejected(self):
        from repro.errors import PlanError
        store = TableStore()
        with pytest.raises(PlanError):
            store.put_table("t", {"a": np.zeros(2), "b": np.zeros(3)})

    def test_missing_table(self):
        from repro.errors import PlanError
        with pytest.raises(PlanError):
            TableStore().columns("ghost")

    def test_batch_rows_empty(self):
        assert batch_rows({}) == 0
