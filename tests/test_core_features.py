"""Tests for the pipeline feature registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FeatureError
from repro.engine.cardinality import (
    DistortedCardinalityModel,
    EstimatedCardinalityModel,
    ExactCardinalityModel,
)
from repro.engine.expressions import (
    BetweenPredicate,
    ComparisonOp,
    ComparisonPredicate,
    InListPredicate,
)
from repro.engine.logical import LogicalJoin, LogicalScan
from repro.engine.optimizer import Optimizer
from repro.engine.pipelines import decompose_into_pipelines
from repro.core.features import FeatureRegistry, default_registry


@pytest.fixture(scope="module")
def registry():
    return FeatureRegistry()


@pytest.fixture(scope="module")
def toy():
    from tests.conftest import build_toy_instance
    return build_toy_instance()


@pytest.fixture(scope="module")
def exact(toy):
    return ExactCardinalityModel(toy.catalog)


@pytest.fixture(scope="module")
def optimizer(toy):
    return Optimizer(toy.schema, toy.catalog)


class TestRegistryLayout:
    def test_feature_count_near_paper(self, registry):
        """The paper's implementation has 110 features; ours has 121
        (slightly different operator mix)."""
        assert 100 <= registry.n_features <= 140

    def test_paper_feature_names_exist(self, registry):
        """Names from Listings 3 and 4 of the paper."""
        for name in ("TableScan_Scan_count", "TableScan_Scan_in_card",
                     "TableScan_Scan_out_percentage",
                     "TableScan_Scan_expr_in_percentage",
                     "TableScan_Scan_expr_between_percentage",
                     "HashJoin_Build_count", "HashJoin_Build_in_card",
                     "HashJoin_Build_in_size", "HashJoin_Build_in_percentage",
                     "HashJoin_Probe_count", "HashJoin_Probe_in_card",
                     "HashJoin_Probe_right_percentage",
                     "HashJoin_Probe_out_percentage",
                     "GroupBy_Build_out_card", "GroupBy_Build_out_size",
                     "GroupBy_Build_in_percentage"):
            assert registry.index_of(name) >= 0

    def test_indices_are_dense_and_unique(self, registry):
        indices = [registry.index_of(n) for n in registry.feature_names()]
        assert sorted(indices) == list(range(registry.n_features))

    def test_unknown_feature(self, registry):
        with pytest.raises(FeatureError):
            registry.index_of("Bogus_Stage_thing")

    def test_default_registry_singleton(self):
        assert default_registry() is default_registry()


class TestScanVectors:
    def test_simple_scan(self, registry, exact, optimizer, toy):
        plan = optimizer.optimize(LogicalScan("orders"))
        pipeline = decompose_into_pipelines(plan)[0]
        vector = registry.vector_for_pipeline(pipeline, exact)
        assert vector[registry.index_of("TableScan_Scan_count")] == 1
        assert vector[registry.index_of("TableScan_Scan_in_card")] == \
            toy.catalog.row_count("orders")
        assert vector[registry.index_of("TableScan_Scan_out_percentage")] == 1.0

    def test_expression_class_percentages(self, registry, exact, optimizer):
        predicates = [
            BetweenPredicate("orders", "o_total", 1, 5000),     # sel 0.5
            InListPredicate("orders", "o_total", [1, 2, 3]),
        ]
        plan = optimizer.optimize(LogicalScan("orders", predicates))
        pipeline = decompose_into_pipelines(plan)[0]
        vector = registry.vector_for_pipeline(pipeline, exact)
        between = vector[registry.index_of(
            "TableScan_Scan_expr_between_percentage")]
        in_list = vector[registry.index_of(
            "TableScan_Scan_expr_in_percentage")]
        # Most selective first (the IN list), then BETWEEN on survivors.
        assert in_list == pytest.approx(1.0)
        assert between < 0.01

    def test_selective_scan_out_percentage(self, registry, exact, optimizer):
        plan = optimizer.optimize(LogicalScan("orders", [
            ComparisonPredicate("orders", "o_total", ComparisonOp.LE, 1000)]))
        pipeline = decompose_into_pipelines(plan)[0]
        vector = registry.vector_for_pipeline(pipeline, exact)
        assert vector[registry.index_of(
            "TableScan_Scan_out_percentage")] == pytest.approx(0.1, abs=0.01)


class TestJoinVectors:
    def test_probe_features(self, registry, exact, optimizer, toy):
        logical = LogicalJoin(
            LogicalScan("customer"), LogicalScan("orders"),
            toy.schema.edge_between("customer", "orders"))
        plan = optimizer.optimize(logical)
        pipelines = decompose_into_pipelines(plan)
        probe_vector = registry.vector_for_pipeline(pipelines[1], exact)
        state = probe_vector[registry.index_of("HashJoin_Probe_in_card")]
        assert state == toy.catalog.row_count("customer")
        assert probe_vector[registry.index_of(
            "HashJoin_Probe_right_percentage")] == pytest.approx(1.0)

    def test_duplicate_probes_sum(self, registry, exact, optimizer, toy):
        """Two probes in one pipeline: counts and percentages add
        (the paper's Listing 4 'feature addition')."""
        inner = LogicalJoin(
            LogicalScan("customer"), LogicalScan("orders"),
            toy.schema.edge_between("customer", "orders"))
        logical = LogicalJoin(LogicalScan("item"), inner,
                              toy.schema.edge_between("item", "orders"))
        plan = optimizer.optimize(logical)
        pipelines = decompose_into_pipelines(plan)
        final = registry.vector_for_pipeline(pipelines[-1], exact)
        count = final[registry.index_of("HashJoin_Probe_count")]
        right = final[registry.index_of("HashJoin_Probe_right_percentage")]
        assert count == 2
        assert right > 1.0  # expected probes per tuple > 100 %


class TestWholePlansAndModels:
    def test_vectors_for_plan_shapes(self, registry, exact, toy_workload):
        for query in toy_workload[:20]:
            vectors, cards = registry.vectors_for_plan(query.plan, exact)
            assert vectors.shape == (query.n_pipelines, registry.n_features)
            assert (cards >= 0).all()

    def test_all_vectors_finite_nonnegative(self, registry, exact,
                                            toy_workload):
        for query in toy_workload:
            vectors, _ = registry.vectors_for_plan(query.plan, exact)
            assert np.isfinite(vectors).all()
            assert (vectors >= 0).all()

    def test_estimated_model_changes_vectors(self, registry, toy, optimizer):
        plan = optimizer.optimize(LogicalScan("customer", [
            ComparisonPredicate("customer", "c_nation", ComparisonOp.LE, 2)]))
        pipeline = decompose_into_pipelines(plan)[0]
        exact_vec = registry.vector_for_pipeline(
            pipeline, ExactCardinalityModel(toy.catalog))
        estimated_vec = registry.vector_for_pipeline(
            pipeline, EstimatedCardinalityModel(toy.catalog))
        # Zipf column: uniformity assumption gets the selectivity wrong.
        index = registry.index_of("TableScan_Scan_out_percentage")
        assert exact_vec[index] != pytest.approx(estimated_vec[index])

    def test_distorted_model_works_for_features(self, registry, toy,
                                                optimizer):
        logical = LogicalJoin(
            LogicalScan("customer"), LogicalScan("orders"),
            toy.schema.edge_between("customer", "orders"))
        plan = optimizer.optimize(logical)
        model = DistortedCardinalityModel(
            ExactCardinalityModel(toy.catalog), 100.0, seed=1)
        for pipeline in decompose_into_pipelines(plan):
            vector = registry.vector_for_pipeline(pipeline, model)
            assert np.isfinite(vector).all()

    def test_describe_vector(self, registry, exact, optimizer):
        plan = optimizer.optimize(LogicalScan("orders"))
        pipeline = decompose_into_pipelines(plan)[0]
        text = registry.describe_vector(
            registry.vector_for_pipeline(pipeline, exact))
        assert "TableScan_Scan_count: 1" in text
        assert "HashJoin" not in text  # zeros omitted, like the listings


class TestMatrixDirectFeaturization:
    """fill_matrix / fill_pipeline_row (the batch path build_dataset
    uses) must agree exactly with the one-pipeline-at-a-time path."""

    def test_fill_matrix_matches_per_pipeline_vectors(self, registry, exact,
                                                      toy_workload):
        for query in toy_workload[:20]:
            pipelines = decompose_into_pipelines(query.plan)
            out = np.zeros((len(pipelines), registry.n_features))
            cards = np.empty(len(pipelines))
            registry.fill_matrix(pipelines, exact, out, cards)
            for i, pipeline in enumerate(pipelines):
                assert np.array_equal(
                    out[i], registry.vector_for_pipeline(pipeline, exact))

    def test_fill_pipeline_row_returns_input_cardinality(self, registry,
                                                         exact, optimizer):
        plan = optimizer.optimize(LogicalScan("orders"))
        pipeline = decompose_into_pipelines(plan)[0]
        row = np.zeros(registry.n_features)
        card = registry.fill_pipeline_row(pipeline, exact, row)
        index = registry.index_of("TableScan_Scan_in_card")
        assert row[index] == card > 0

    def test_fill_matrix_rejects_wrong_shape(self, registry, exact,
                                             toy_workload):
        from repro.errors import SchemaError
        pipelines = decompose_into_pipelines(toy_workload[0].plan)
        bad = np.zeros((len(pipelines), registry.n_features + 1))
        with pytest.raises(SchemaError):
            registry.fill_matrix(pipelines, exact, bad)
